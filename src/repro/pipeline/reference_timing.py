"""Reference (seed) timing engine, kept as the behavioural specification.

This is a verbatim copy of the original dictionary-based
``TimingPipeline.run`` scheduling loop.  The optimized engine in
:mod:`repro.pipeline.timing` must stay *cycle-identical* to this one —
same total cycles, same stall breakdown, same chronogram — and the
regression tests replay every kernel under every Figure 8 policy through
both engines to prove it.

Like the codec references in :mod:`repro.ecc.reference`, nothing on a
hot path should use this class; it exists for equivalence testing and as
the baseline the perf harness measures speedups against.

Note: faithfully to the seed, this engine *does* set
``hierarchy.write_buffer.capacity`` (the shared-state side effect the
optimized engine no longer has), so always hand it a private
:class:`~repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.lookahead import LookaheadUnit
from repro.core.policies import DataReadyStage, EccPolicy
from repro.functional.simulator import DynInstruction, FunctionalTrace
from repro.isa.instructions import InstructionClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.chronogram import Chronogram, ChronogramEntry
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stages import Stage
from repro.pipeline.statistics import PipelineStatistics
from repro.pipeline.timing import PipelineResult, _RegisterStatus
from repro.core.hazards import consumer_distance


class ReferenceTimingPipeline:
    """Replays a functional trace under one ECC policy (seed scheduling loop)."""

    def __init__(
        self,
        policy: EccPolicy,
        hierarchy: MemoryHierarchy,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.policy = policy
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()
        self.lookahead_unit = LookaheadUnit()

    # ------------------------------------------------------------------ #
    def run(self, trace: FunctionalTrace) -> PipelineResult:
        """Time the whole ``trace`` and return the collected results."""
        policy = self.policy
        config = self.config
        hierarchy = self.hierarchy
        write_buffer = hierarchy.write_buffer
        write_buffer.capacity = config.write_buffer_entries

        stats = PipelineStatistics()
        stats.lookahead = self.lookahead_unit.stats
        chronogram = Chronogram()

        prev_end: Dict[Stage, int] = {stage: 0 for stage in Stage}
        registers: Dict[int, _RegisterStatus] = {}
        cc_ready = 0
        fetch_free = 0
        redirect_cycle = 1
        prev_dyn: Optional[DynInstruction] = None
        prev_lookahead = False
        last_retire = 0

        stream = trace.instructions
        record_window = config.chronogram_window

        for dyn in stream:
            instr = dyn.instruction
            klass = dyn.klass

            # ---------------------------------------------------------- #
            # Fetch                                                      #
            # ---------------------------------------------------------- #
            sequential_start = fetch_free + 1
            f_start = max(sequential_start, redirect_cycle)
            if f_start > sequential_start:
                stats.stalls.branch_redirect += f_start - sequential_start
            icache_extra = hierarchy.instruction_fetch_cycles(dyn.pc)
            if icache_extra:
                stats.stalls.icache_miss += icache_extra
            f_end = f_start + icache_extra
            fetch_free = f_end

            # ---------------------------------------------------------- #
            # Decode / Register access                                   #
            # ---------------------------------------------------------- #
            d_start = max(f_end + 1, prev_end[Stage.DECODE] + 1)
            d_end = d_start
            ra_start = max(d_end + 1, prev_end[Stage.REGISTER_ACCESS] + 1)
            ra_end = ra_start

            # ---------------------------------------------------------- #
            # Execute (operand wait happens here, matching the figures)  #
            # ---------------------------------------------------------- #
            ex_start = max(ra_end + 1, prev_end[Stage.EXECUTE] + 1)
            source_ready = 0
            limiting_register: Optional[_RegisterStatus] = None
            for reg in dyn.source_registers:
                status = registers.get(reg)
                if status is not None and status.ready > source_ready:
                    source_ready = status.ready
                    limiting_register = status
            if instr.reads_condition_codes and cc_ready > source_ready:
                source_ready = cc_ready
                limiting_register = None
            exec_cycle = max(ex_start, source_ready + 1)
            wait = exec_cycle - ex_start
            if wait > 0:
                if limiting_register is not None and limiting_register.produced_by_load:
                    if limiting_register.via_ecc_stage:
                        stats.stalls.ecc_wait += 1
                        stats.stalls.load_use_wait += wait - 1
                    else:
                        stats.stalls.load_use_wait += wait
                else:
                    stats.stalls.operand_wait += wait
            ex_extra = 0
            if klass is InstructionClass.MUL:
                ex_extra = config.mul_latency - 1
            elif klass is InstructionClass.DIV:
                ex_extra = config.div_latency - 1
            ex_end = exec_cycle + ex_extra

            # ---------------------------------------------------------- #
            # LAEC look-ahead evaluation                                 #
            # ---------------------------------------------------------- #
            lookahead_taken = False
            if policy.supports_lookahead and dyn.is_load:
                address_ready = max(
                    (registers[r].ready for r in dyn.address_registers if r in registers),
                    default=0,
                )
                operands_ok = address_ready <= exec_cycle - 2
                decision = self.lookahead_unit.evaluate(
                    dyn,
                    prev_dyn,
                    predecessor_lookahead=prev_lookahead,
                    address_operands_ready=operands_ok,
                )
                lookahead_taken = decision.taken

            # ---------------------------------------------------------- #
            # Memory                                                     #
            # ---------------------------------------------------------- #
            unconstrained_m = ex_end + 1
            m_start = max(unconstrained_m, prev_end[Stage.MEMORY] + 1)
            if m_start > unconstrained_m:
                stats.stalls.memory_structural += m_start - unconstrained_m
            m_occupancy = 1
            load_hit = False
            data_via_ecc = False
            if dyn.is_load:
                stats.loads += 1
                drain_until = write_buffer.drain_complete_time(m_start)
                if drain_until > m_start:
                    stats.stalls.write_buffer_drain += drain_until - m_start
                    write_buffer.record_load_wait(drain_until - m_start)
                    m_start = drain_until
                outcome = hierarchy.load_access(dyn.address)
                load_hit = outcome.hit
                if outcome.hit:
                    stats.load_hits += 1
                    m_occupancy = policy.memory_stage_cycles(is_load=True, hit=True)
                else:
                    stats.load_misses += 1
                    m_occupancy = 1 + outcome.extra_cycles
                    stats.stalls.dl1_miss += outcome.extra_cycles
            elif dyn.is_store:
                stats.stores += 1
                outcome = hierarchy.store_access(dyn.address)
                stalled_until = write_buffer.push(m_start, outcome.store_drain_latency)
                if stalled_until > m_start:
                    stats.stalls.write_buffer_full += stalled_until - m_start
                    m_start = stalled_until
            m_end = m_start + m_occupancy - 1

            # ---------------------------------------------------------- #
            # ECC stage (only traversed when the policy requires it)     #
            # ---------------------------------------------------------- #
            uses_ecc_stage = False
            ecc_start = ecc_end = 0
            if policy.has_ecc_stage:
                if policy.supports_lookahead:
                    uses_ecc_stage = dyn.is_load and load_hit and not lookahead_taken
                else:
                    uses_ecc_stage = True
            if uses_ecc_stage:
                ecc_start = max(m_end + 1, prev_end[Stage.ECC] + 1)
                ecc_end = ecc_start

            # ---------------------------------------------------------- #
            # Exception / Write-back                                     #
            # ---------------------------------------------------------- #
            before_xc = ecc_end if uses_ecc_stage else m_end
            xc_start = max(before_xc + 1, prev_end[Stage.EXCEPTION] + 1)
            xc_end = xc_start
            wb_start = max(xc_end + 1, prev_end[Stage.WRITE_BACK] + 1)
            wb_end = wb_start
            last_retire = max(last_retire, wb_end)

            # ---------------------------------------------------------- #
            # Result availability / bypass updates                       #
            # ---------------------------------------------------------- #
            destination = dyn.destination_register
            if destination is not None:
                if dyn.is_load:
                    if load_hit:
                        ready_stage = policy.load_hit_data_ready_stage(lookahead_taken)
                        if ready_stage is DataReadyStage.ECC and uses_ecc_stage:
                            ready = ecc_end
                            data_via_ecc = True
                        else:
                            ready = m_end
                    else:
                        # Miss data arrives already checked by the L2/memory.
                        ready = m_end
                    registers[destination] = _RegisterStatus(
                        ready=ready, produced_by_load=True, via_ecc_stage=data_via_ecc
                    )
                else:
                    registers[destination] = _RegisterStatus(ready=ex_end)
            if instr.sets_condition_codes:
                cc_ready = ex_end

            # ---------------------------------------------------------- #
            # Control flow                                               #
            # ---------------------------------------------------------- #
            if klass is InstructionClass.BRANCH:
                stats.branches += 1
                if dyn.branch_taken:
                    stats.taken_branches += 1
                    redirect_cycle = f_end + 1 + config.taken_branch_penalty
                else:
                    redirect_cycle = f_end + 1
            elif klass is InstructionClass.CALL:
                redirect_cycle = f_end + 1 + config.taken_branch_penalty
            elif klass is InstructionClass.JUMP:
                redirect_cycle = f_end + 1 + config.indirect_branch_penalty
            else:
                redirect_cycle = f_end + 1

            # ---------------------------------------------------------- #
            # Table II: dependent-load accounting                        #
            # ---------------------------------------------------------- #
            if dyn.is_load:
                distance = consumer_distance(stream, dyn.index, max_distance=2)
                if distance is not None:
                    stats.dependent_loads += 1
                    if distance == 1:
                        stats.dependent_load_distance_1 += 1
                    else:
                        stats.dependent_load_distance_2 += 1

            # ---------------------------------------------------------- #
            # Chronogram recording                                       #
            # ---------------------------------------------------------- #
            if record_window and dyn.index < record_window:
                entry = ChronogramEntry(index=dyn.index, label=instr.render())
                entry.record(Stage.FETCH, f_start, f_end)
                entry.record(Stage.DECODE, d_start, d_end)
                entry.record(Stage.REGISTER_ACCESS, ra_start, ra_end)
                entry.record(Stage.EXECUTE, ex_start, ex_end)
                entry.record(Stage.MEMORY, m_start, m_end)
                if uses_ecc_stage:
                    entry.record(Stage.ECC, ecc_start, ecc_end)
                entry.record(Stage.EXCEPTION, xc_start, xc_end)
                entry.record(Stage.WRITE_BACK, wb_start, wb_end)
                chronogram.add(entry)

            # ---------------------------------------------------------- #
            # Advance per-stage in-order trackers                        #
            # ---------------------------------------------------------- #
            prev_end[Stage.FETCH] = f_end
            prev_end[Stage.DECODE] = d_end
            prev_end[Stage.REGISTER_ACCESS] = ra_end
            prev_end[Stage.EXECUTE] = ex_end
            prev_end[Stage.MEMORY] = m_end
            if uses_ecc_stage:
                prev_end[Stage.ECC] = ecc_end
            prev_end[Stage.EXCEPTION] = xc_end
            prev_end[Stage.WRITE_BACK] = wb_end
            prev_dyn = dyn
            prev_lookahead = lookahead_taken
            stats.instructions += 1

        stats.cycles = last_retire
        dl1 = hierarchy.dl1_statistics()
        return PipelineResult(
            policy=policy,
            stats=stats,
            chronogram=chronogram,
            dl1_stats=dl1.as_dict(),
            bus_transactions=hierarchy.bus.stats.transactions,
            bus_contention_cycles=hierarchy.bus.stats.contention_cycles,
        )
