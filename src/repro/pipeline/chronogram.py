"""Chronogram (pipeline diagram) recording and rendering.

The paper explains every scheme with small chronograms (Figures 2-5 and
7): one row per instruction, one column per cycle, each cell naming the
stage the instruction occupies.  The :class:`Chronogram` records exactly
that and renders it as ASCII so the reproduction can regenerate the
figures from actual simulations of the same instruction sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipeline.stages import Stage


@dataclass
class ChronogramEntry:
    """Stage occupancy of one dynamic instruction."""

    index: int
    label: str
    #: Mapping stage -> (first_cycle, last_cycle), both inclusive.
    occupancy: Dict[Stage, Tuple[int, int]] = field(default_factory=dict)

    def record(self, stage: Stage, start: int, end: int) -> None:
        self.occupancy[stage] = (start, end)

    @property
    def first_cycle(self) -> int:
        return min(start for start, _ in self.occupancy.values())

    @property
    def last_cycle(self) -> int:
        return max(end for _, end in self.occupancy.values())

    def stage_at(self, cycle: int) -> Optional[Stage]:
        for stage, (start, end) in self.occupancy.items():
            if start <= cycle <= end:
                return stage
        return None

    def cycles_in(self, stage: Stage) -> int:
        if stage not in self.occupancy:
            return 0
        start, end = self.occupancy[stage]
        return end - start + 1


@dataclass
class Chronogram:
    """A window of per-instruction stage occupancy records."""

    entries: List[ChronogramEntry] = field(default_factory=list)

    def add(self, entry: ChronogramEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> ChronogramEntry:
        return self.entries[index]

    def window(self, first: int, last: int) -> "Chronogram":
        """Entries whose dynamic index lies in ``[first, last]``."""
        return Chronogram(
            entries=[e for e in self.entries if first <= e.index <= last]
        )

    def render(self, *, label_width: int = 24, cell_width: int = 4) -> str:
        """ASCII rendering in the style of the paper's figures."""
        if not self.entries:
            return "(empty chronogram)"
        first_cycle = min(entry.first_cycle for entry in self.entries)
        last_cycle = max(entry.last_cycle for entry in self.entries)
        header_cells = [
            f"{cycle:>{cell_width}}" for cycle in range(first_cycle, last_cycle + 1)
        ]
        lines = [" " * label_width + "".join(header_cells)]
        for entry in self.entries:
            label = entry.label[: label_width - 1].ljust(label_width)
            cells = []
            for cycle in range(first_cycle, last_cycle + 1):
                stage = entry.stage_at(cycle)
                cells.append(f"{stage.short if stage else '':>{cell_width}}")
            lines.append(label + "".join(cells))
        return "\n".join(lines)
