"""Pipeline stage identifiers.

The baseline NGMP pipeline (paper Figure 1) has seven stages; the Extra
Stage and LAEC policies add a dedicated ECC stage between Memory and
Exception (Figures 4-7).
"""

from __future__ import annotations

import enum
from typing import List

from repro.core.policies import EccPolicy


class Stage(enum.Enum):
    """Stages of the modelled pipeline, in program order."""

    FETCH = "F"
    DECODE = "D"
    REGISTER_ACCESS = "RA"
    EXECUTE = "Exe"
    MEMORY = "M"
    ECC = "ECC"
    EXCEPTION = "Exc"
    WRITE_BACK = "WB"

    @property
    def short(self) -> str:
        return self.value


BASE_STAGES: List[Stage] = [
    Stage.FETCH,
    Stage.DECODE,
    Stage.REGISTER_ACCESS,
    Stage.EXECUTE,
    Stage.MEMORY,
    Stage.EXCEPTION,
    Stage.WRITE_BACK,
]

ECC_STAGES: List[Stage] = [
    Stage.FETCH,
    Stage.DECODE,
    Stage.REGISTER_ACCESS,
    Stage.EXECUTE,
    Stage.MEMORY,
    Stage.ECC,
    Stage.EXCEPTION,
    Stage.WRITE_BACK,
]


def stages_for_policy(policy: EccPolicy) -> List[Stage]:
    """Stage sequence of the pipeline under ``policy`` (7 or 8 stages)."""
    return list(ECC_STAGES) if policy.has_ecc_stage else list(BASE_STAGES)
