"""Query layer over recorded trace files (``python -m repro trace``).

Modeled on the cohort-query idiom (a class that turns questions into
scans over recorded data): :class:`TraceFile` loads one JSONL trace and
answers the questions a post-mortem actually asks — where did the time
go (:meth:`slowest_groups`), what went wrong and in what order
(:meth:`failure_timeline`), what do the final counters say
(:meth:`metrics_text`), is the file well-formed (:meth:`validate`) —
instead of leaving the user to grep span soup.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import render_prometheus
from repro.telemetry.schema import validate_record

#: Event names that belong on a failure timeline.
FAILURE_EVENTS = (
    "point-failure",
    "retry",
    "quarantine",
    "pool-restart",
    "store-corrupt",
    "interrupt",
    "campaign-error",
)


class TraceFile:
    """One loaded trace: indexed records plus the questions over them."""

    def __init__(self, path: Union[str, "object"]) -> None:
        self.path = str(path)
        self.records: List[Dict[str, object]] = []
        self.parse_errors: List[str] = []
        self.meta: Optional[Dict[str, object]] = None
        self.spans: List[Dict[str, object]] = []
        self.events: List[Dict[str, object]] = []
        self.metrics: Optional[List[Dict[str, object]]] = None
        self.flights: List[Dict[str, object]] = []
        self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as stream:
            for number, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    self.parse_errors.append(f"line {number}: invalid JSON ({exc})")
                    continue
                record["_line"] = number
                self.records.append(record)
                kind = record.get("event")
                if kind == "meta" and self.meta is None:
                    self.meta = record
                elif kind == "span":
                    self.spans.append(record)
                elif kind == "event":
                    self.events.append(record)
                elif kind == "metrics":
                    self.metrics = record.get("metrics")  # type: ignore[assignment]
                elif kind == "flight":
                    self.flights.append(record)

    # ------------------------------------------------------------------ #
    # questions                                                          #
    # ------------------------------------------------------------------ #
    def spans_named(self, name: str) -> List[Dict[str, object]]:
        return [span for span in self.spans if span.get("name") == name]

    @staticmethod
    def _duration(span: Dict[str, object]) -> float:
        return float(span.get("t_end", 0.0)) - float(span.get("t_start", 0.0))

    def summary(self) -> str:
        """The trace at a glance: campaign window, span/event counts,
        failure counts, workers seen."""
        lines = [f"trace: {self.path}"]
        if self.meta is not None:
            config = self.meta.get("config") or {}
            if config:
                rendered = " ".join(
                    f"{key}={config[key]}" for key in sorted(config)
                )
                lines.append(f"config: {rendered}")
        campaigns = self.spans_named("campaign")
        if campaigns:
            total = sum(self._duration(span) for span in campaigns)
            status = campaigns[0].get("attrs", {}).get("status", "?")
            lines.append(f"campaign: {total:.2f}s status={status}")
        batches = self.spans_named("batch")
        points = self.spans_named("point")
        lines.append(
            f"spans: {len(self.spans)} "
            f"(batch={len(batches)} point={len(points)}) "
            f"events: {len(self.events)}"
        )
        workers = sorted(
            {
                span["worker"]
                for span in self.spans
                if isinstance(span.get("worker"), int)
            }
        )
        if workers:
            lines.append(
                f"workers: {len(workers)} "
                f"({', '.join(str(pid) for pid in workers)})"
            )
        failures = [
            event for event in self.events if event.get("name") in FAILURE_EVENTS
        ]
        if failures:
            counts: Dict[str, int] = {}
            for event in failures:
                counts[str(event["name"])] = counts.get(str(event["name"]), 0) + 1
            rendered = " ".join(f"{name}={counts[name]}" for name in sorted(counts))
            lines.append(f"failures: {rendered}")
        else:
            lines.append("failures: none")
        if self.flights:
            reasons = ", ".join(str(f.get("reason")) for f in self.flights)
            lines.append(f"flight dumps: {len(self.flights)} ({reasons})")
        return "\n".join(lines)

    def slowest_groups(self, count: int = 5) -> List[Tuple[str, float, int]]:
        """The ``count`` slowest batch spans: (label, seconds, points).

        Slow batches are where sweep time hides — a group whose golden
        derivation missed the cache, or one point pinning a retry loop.
        """
        ranked = []
        for span in self.spans_named("batch"):
            attrs = span.get("attrs") or {}
            label = str(
                attrs.get("stratum")
                or attrs.get("group")
                or f"batch#{span.get('id')}"
            )
            ranked.append((label, self._duration(span), int(attrs.get("points", 0))))
        ranked.sort(key=lambda item: -item[1])
        return ranked[:count]

    def render_slowest(self, count: int = 5) -> str:
        rows = self.slowest_groups(count)
        if not rows:
            return "no batch spans recorded"
        lines = [f"slowest {len(rows)} batch group(s):"]
        for label, seconds, points in rows:
            lines.append(f"  {seconds:8.3f}s  {points:4d} pt  {label}")
        return "\n".join(lines)

    def failure_timeline(self) -> List[Dict[str, object]]:
        """Failure-relevant events in time order (the post-mortem spine)."""
        failures = [
            event for event in self.events if event.get("name") in FAILURE_EVENTS
        ]
        failures.sort(key=lambda event: float(event.get("t", 0.0)))
        return failures

    def render_timeline(self) -> str:
        timeline = self.failure_timeline()
        if not timeline:
            return "no failure events recorded"
        lines = ["failure timeline:"]
        for event in timeline:
            fields = event.get("fields") or {}
            detail = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            lines.append(
                f"  t={float(event.get('t', 0.0)):9.3f}s {event.get('name')}"
                + (f" {detail}" if detail else "")
            )
        for flight in self.flights:
            lines.append(
                f"  t={float(flight.get('t', 0.0)):9.3f}s flight-dump "
                f"reason={flight.get('reason')} "
                f"entries={len(flight.get('entries') or [])}"
            )
        return "\n".join(lines)

    def metrics_text(self) -> str:
        """Final metrics snapshot rendered Prometheus-style."""
        if not self.metrics:
            return "no metrics snapshot recorded"
        return render_prometheus(self.metrics).rstrip("\n")

    def validate(self) -> List[str]:
        """All schema problems in the file (empty = valid)."""
        errors = list(self.parse_errors)
        for record in self.records:
            line = record.get("_line")
            clean = {key: value for key, value in record.items() if key != "_line"}
            errors.extend(validate_record(clean, line if isinstance(line, int) else None))
        if self.meta is None:
            errors.append("file: no meta record (not a repro trace?)")
        return errors


__all__ = ["FAILURE_EVENTS", "TraceFile"]
