"""Validation of trace-file records against the ``repro-trace/1`` schema.

Hand-rolled field checks (stdlib only — the repo bakes in no JSON-schema
library) used two ways: the CI ``telemetry-smoke`` job validates every
line a traced campaign emits, and ``python -m repro trace --validate``
gives the same check to users.  :data:`RECORD_SCHEMAS` doubles as the
machine-readable description of the trace format for the docs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.telemetry.trace import TRACE_SCHEMA

_NUMBER = (int, float)

#: record kind -> field name -> (accepted types, required).  ``None`` in
#: the accepted-types tuple marks a nullable field.
RECORD_SCHEMAS: Dict[str, Dict[str, Tuple[tuple, bool]]] = {
    "meta": {
        "schema": ((str,), True),
        "created_unix": (_NUMBER, True),
        "pid": ((int,), True),
        "config": ((dict,), True),
    },
    "span": {
        "name": ((str,), True),
        "id": ((int,), True),
        "parent": ((int, None), True),
        "t_start": (_NUMBER, True),
        "t_end": (_NUMBER, True),
        "pid": ((int,), True),
        "worker": ((int, None), True),
        "attrs": ((dict,), True),
    },
    "event": {
        "name": ((str,), True),
        "t": (_NUMBER, True),
        "pid": ((int,), True),
        "fields": ((dict,), True),
    },
    "metrics": {
        "t": (_NUMBER, True),
        "metrics": ((list,), True),
    },
    "flight": {
        "t": (_NUMBER, True),
        "pid": ((int,), True),
        "reason": ((str,), True),
        "entries": ((list,), True),
    },
}

#: Span names the engine emits, in hierarchy order.
SPAN_NAMES = ("campaign", "batch", "point")

_METRIC_FIELDS: Dict[str, Dict[str, Tuple[tuple, bool]]] = {
    "counter": {"value": (_NUMBER, True)},
    "gauge": {"value": (_NUMBER, True)},
    "histogram": {
        "bounds": ((list,), True),
        "buckets": ((list,), True),
        "sum": (_NUMBER, True),
        "count": ((int,), True),
    },
}


def _check_fields(
    record: Mapping[str, object],
    fields: Mapping[str, Tuple[tuple, bool]],
    context: str,
) -> List[str]:
    errors = []
    for field, (types, required) in fields.items():
        if field not in record:
            if required:
                errors.append(f"{context}: missing field {field!r}")
            continue
        value = record[field]
        nullable = None in types
        concrete = tuple(t for t in types if t is not None)
        if value is None:
            if not nullable:
                errors.append(f"{context}: field {field!r} must not be null")
        elif concrete and not isinstance(value, concrete):
            # bool passes isinstance(..., int); a boolean pid/id/count is
            # always a bug.
            errors.append(
                f"{context}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                + "/".join(t.__name__ for t in concrete)
            )
        if isinstance(value, bool) and bool not in concrete and float in concrete:
            errors.append(f"{context}: field {field!r} is a bool, expected number")
    return errors


def validate_metric(entry: object, context: str = "metric") -> List[str]:
    """Validate one entry of a metrics snapshot (``to_payload`` form)."""
    if not isinstance(entry, dict):
        return [f"{context}: not an object"]
    errors = _check_fields(
        entry,
        {"name": ((str,), True), "type": ((str,), True), "labels": ((dict,), True)},
        context,
    )
    metric_type = entry.get("type")
    fields = _METRIC_FIELDS.get(metric_type) if isinstance(metric_type, str) else None
    if fields is None:
        errors.append(f"{context}: unknown metric type {metric_type!r}")
    else:
        errors.extend(_check_fields(entry, fields, context))
    if entry.get("type") == "histogram":
        bounds = entry.get("bounds")
        buckets = entry.get("buckets")
        if isinstance(bounds, list) and isinstance(buckets, list):
            if len(buckets) != len(bounds) + 1:
                errors.append(
                    f"{context}: histogram needs len(bounds)+1 buckets, "
                    f"got {len(buckets)} for {len(bounds)} bounds"
                )
    return errors


def validate_record(record: object, line: Optional[int] = None) -> List[str]:
    """Validate one parsed trace record; returns a list of problems
    (empty = valid)."""
    context = f"line {line}" if line is not None else "record"
    if not isinstance(record, dict):
        return [f"{context}: not a JSON object"]
    kind = record.get("event")
    fields = RECORD_SCHEMAS.get(kind) if isinstance(kind, str) else None
    if fields is None:
        return [f"{context}: unknown record kind {kind!r}"]
    errors = _check_fields(record, fields, context)
    if kind == "meta" and record.get("schema") not in (None, TRACE_SCHEMA):
        errors.append(
            f"{context}: schema {record.get('schema')!r} is not {TRACE_SCHEMA!r}"
        )
    if kind == "span":
        t_start, t_end = record.get("t_start"), record.get("t_end")
        if (
            isinstance(t_start, _NUMBER)
            and isinstance(t_end, _NUMBER)
            and t_end < t_start
        ):
            errors.append(f"{context}: span ends before it starts")
    if kind == "metrics" and isinstance(record.get("metrics"), list):
        for index, entry in enumerate(record["metrics"]):
            errors.extend(validate_metric(entry, f"{context}: metrics[{index}]"))
    return errors


__all__ = ["RECORD_SCHEMAS", "SPAN_NAMES", "validate_metric", "validate_record"]
