"""Campaign telemetry: metrics registry, trace spans, flight recorder.

Four concerns, one package:

* :mod:`repro.telemetry.metrics` — the always-on process-local registry
  the engine/supervisor/replay/store publish into;
* :mod:`repro.telemetry.trace` — opt-in JSONL span/event traces plus the
  module-level activation that keeps instrumentation no-op when off;
* :mod:`repro.telemetry.flight` — the bounded ring buffer whose tail
  rides along in quarantine payloads and crash dumps;
* :mod:`repro.telemetry.console` / :mod:`~repro.telemetry.analyze` /
  :mod:`~repro.telemetry.schema` — the human-facing surfaces: one
  emission path for status lines, the ``repro trace`` query layer, and
  trace-record validation.

Everything here is **deterministically inert**: campaign summaries,
store payloads, and committed artifacts are byte-identical whether
telemetry is on or off.
"""

from repro.telemetry import flight, metrics
from repro.telemetry.console import Console, get_console, set_console
from repro.telemetry.flight import FlightRecorder, record, recorder
from repro.telemetry.metrics import (
    MetricsRegistry,
    inc,
    observe,
    observe_phase,
    phase_timer,
    registry,
    render_prometheus,
)
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    Telemetry,
    TraceWriter,
    activate,
    active,
    begin_span,
    deactivate,
    emit_flight,
    emit_metrics,
    emit_span,
    end_span,
    event,
)

__all__ = [
    "TRACE_SCHEMA",
    "Console",
    "FlightRecorder",
    "MetricsRegistry",
    "Telemetry",
    "TraceWriter",
    "activate",
    "active",
    "begin_span",
    "deactivate",
    "emit_flight",
    "emit_metrics",
    "emit_span",
    "end_span",
    "event",
    "flight",
    "get_console",
    "inc",
    "metrics",
    "observe",
    "observe_phase",
    "phase_timer",
    "record",
    "recorder",
    "registry",
    "render_prometheus",
    "set_console",
]
