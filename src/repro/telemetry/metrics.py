"""The campaign metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` lives per process (``registry()``); the
campaign engine, the execution supervisor, the batched replay backend
and the result store all publish into it through the cheap module-level
helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`,
:func:`observe_phase`).  The registry is *always on* — publishing is a
dict update, far below measurement noise — and **deterministically
inert**: nothing read from it ever flows into campaign summaries, store
payloads or committed artifacts.  It is exported only through the
telemetry side channel (the ``metrics`` trace event a ``--trace`` run
appends at campaign end, rendered Prometheus-style by
``python -m repro trace PATH --metrics``).

Histograms use **fixed bucket bounds** so snapshots from different
processes merge bucket-wise: pool workers accumulate their per-phase
timings locally, ship a drained snapshot back with each finished batch
job, and the engine folds it into the campaign-process registry
(:func:`drain_phase_payload` / :func:`merge_phase_payload`).

Metric identity is ``(name, sorted labels)``, mirroring the Prometheus
data model (``campaign_phase_seconds{phase="triage"}``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: Fixed bucket bounds (seconds) shared by every duration histogram, so
#: worker snapshots merge bucket-wise with the campaign process.
DURATION_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)

#: The per-phase wall-clock histogram fed by :func:`observe_phase`.
PHASE_METRIC = "campaign_phase_seconds"

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelItems, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


class Counter:
    """A monotonically increasing count."""

    metric_type = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.metric_type,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def merge_payload(self, payload: Mapping[str, object]) -> None:
        self.value += float(payload["value"])  # type: ignore[arg-type]

    def render(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format_value(self.value)}"]


class Gauge(Counter):
    """A value that can go up and down (last write wins)."""

    metric_type = "gauge"

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value

    def merge_payload(self, payload: Mapping[str, object]) -> None:
        self.value = float(payload["value"])  # type: ignore[arg-type]


class Histogram:
    """A fixed-bound bucket histogram (Prometheus cumulative rendering).

    ``bounds`` are the *upper* bucket bounds; one implicit ``+Inf``
    bucket catches the tail.  Internal counts are per-bucket (not
    cumulative) so merging two snapshots is element-wise addition;
    rendering accumulates.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Tuple[float, ...] = DURATION_BUCKETS,
    ) -> None:
        if tuple(sorted(bounds)) != tuple(bounds) or not bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                slot = index
                break
        self.buckets[slot] += 1
        self.sum += value
        self.count += 1

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.metric_type,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "sum": self.sum,
            "count": self.count,
        }

    def merge_payload(self, payload: Mapping[str, object]) -> None:
        if tuple(payload["bounds"]) != self.bounds:  # type: ignore[arg-type]
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket bounds"
            )
        for slot, count in enumerate(payload["buckets"]):  # type: ignore[arg-type]
            self.buckets[slot] += int(count)
        self.sum += float(payload["sum"])  # type: ignore[arg-type]
        self.count += int(payload["count"])  # type: ignore[arg-type]

    def render(self) -> List[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.buckets):
            cumulative += count
            labels = _render_labels(self.labels, f'le="{bound:g}"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        cumulative += self.buckets[-1]
        labels = _render_labels(self.labels, 'le="+Inf"')
        lines.append(f"{self.name}_bucket{labels} {cumulative}")
        plain = _render_labels(self.labels)
        lines.append(f"{self.name}_sum{plain} {repr(float(self.sum))}")
        lines.append(f"{self.name}_count{plain} {self.count}")
        return lines


class MetricsRegistry:
    """All metrics of one process, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Optional[Mapping[str, str]], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Tuple[float, ...] = DURATION_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def __iter__(self) -> Iterator[object]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """The current value of a counter/gauge (0 if never published)."""
        metric = self._metrics.get((name, _label_key(labels)))
        return metric.value if isinstance(metric, Counter) else 0

    def to_payload(self) -> List[Dict[str, object]]:
        """JSON-serialisable snapshot, deterministically ordered."""
        return [metric.to_payload() for metric in self]

    def merge_payload(self, payload: List[Mapping[str, object]]) -> None:
        """Fold a snapshot from another process into this registry."""
        classes = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for entry in payload:
            cls = classes[str(entry["type"])]
            kwargs = {}
            if cls is Histogram:
                kwargs["bounds"] = tuple(entry["bounds"])  # type: ignore[arg-type]
            metric = self._get(cls, str(entry["name"]), entry.get("labels"), **kwargs)
            metric.merge_payload(entry)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric."""
        return render_prometheus(self.to_payload())


def render_prometheus(payload: List[Mapping[str, object]]) -> str:
    """Render a metrics snapshot (``to_payload`` form) as Prometheus text."""
    staging = MetricsRegistry()
    staging.merge_payload(list(payload))
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for metric in staging:
        name, metric_type = metric.name, metric.metric_type  # type: ignore[attr-defined]
        if seen_types.get(name) != metric_type:
            lines.append(f"# TYPE {name} {metric_type}")
            seen_types[name] = metric_type
        lines.extend(metric.render())  # type: ignore[attr-defined]
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# the process-local registry and publishing helpers                      #
# ---------------------------------------------------------------------- #
_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_PID: Optional[int] = None


def registry() -> MetricsRegistry:
    """This process's registry (fresh after a fork, so pool workers never
    double-count events inherited from the parent)."""
    global _REGISTRY, _REGISTRY_PID
    pid = os.getpid()
    if _REGISTRY is None or _REGISTRY_PID != pid:
        _REGISTRY = MetricsRegistry()
        _REGISTRY_PID = pid
    return _REGISTRY


def reset_registry() -> None:
    """Drop every metric (tests; a campaign start snapshots instead)."""
    global _REGISTRY, _REGISTRY_PID
    _REGISTRY = None
    _REGISTRY_PID = None


def inc(
    name: str, amount: float = 1, labels: Optional[Mapping[str, str]] = None
) -> None:
    registry().counter(name, labels).inc(amount)


def set_gauge(
    name: str, value: float, labels: Optional[Mapping[str, str]] = None
) -> None:
    registry().gauge(name, labels).set(value)


def observe(
    name: str,
    value: float,
    labels: Optional[Mapping[str, str]] = None,
    bounds: Tuple[float, ...] = DURATION_BUCKETS,
) -> None:
    registry().histogram(name, labels, bounds=bounds).observe(value)


def observe_phase(phase: str, seconds: float) -> None:
    """Record one phase duration (``campaign_phase_seconds{phase=...}``)."""
    observe(PHASE_METRIC, seconds, labels={"phase": phase})


class phase_timer:
    """``with phase_timer("triage"):`` — time a block into its phase."""

    def __init__(self, phase: str) -> None:
        self.phase = phase
        self._started = 0.0

    def __enter__(self) -> "phase_timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        observe_phase(self.phase, time.perf_counter() - self._started)


def drain_phase_payload() -> List[Dict[str, object]]:
    """Snapshot-and-reset this process's phase histograms.

    Pool workers call this at the end of a batch job and ship the
    snapshot back with the results; the engine folds it into the
    campaign process with :func:`merge_phase_payload`.  Draining (rather
    than snapshotting) keeps long-lived warm workers from re-reporting
    old batches.
    """
    reg = registry()
    payload = []
    for metric in list(reg):
        if isinstance(metric, Histogram) and metric.name == PHASE_METRIC:
            payload.append(metric.to_payload())
            metric.buckets = [0] * (len(metric.bounds) + 1)
            metric.sum = 0.0
            metric.count = 0
    return payload


def merge_phase_payload(payload: List[Mapping[str, object]]) -> None:
    if payload:
        registry().merge_payload(list(payload))


__all__ = [
    "DURATION_BUCKETS",
    "PHASE_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "drain_phase_payload",
    "inc",
    "merge_phase_payload",
    "observe",
    "observe_phase",
    "phase_timer",
    "registry",
    "render_prometheus",
    "reset_registry",
    "set_gauge",
]
