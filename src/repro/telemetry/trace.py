"""Structured trace spans: opt-in JSONL telemetry for campaign runs.

A traced campaign (``--trace PATH``) appends one JSON object per line:

* ``meta`` — file header: schema id, wall-clock origin, pid, a config
  summary;
* ``span`` — one *completed* span, with monotonic ``t_start``/``t_end``
  (seconds since the trace origin), the emitting ``pid``, the ``worker``
  pid when the work ran in a pool worker, an ``id`` and a ``parent`` id.
  The hierarchy is ``campaign`` → ``batch`` (one stratum batch) →
  ``point`` (one sampled fault);
* ``event`` — an instantaneous occurrence (supervisor interventions:
  retries, pool restarts, quarantines, chaos, interrupts) with a single
  ``t``;
* ``metrics`` — the final metrics-registry snapshot, appended once at
  campaign end (rendered Prometheus-style by ``repro trace --metrics``);
* ``flight`` — a flight-recorder dump (crash/SIGINT post-mortems).

The module-level activation (:func:`activate` / :func:`deactivate`)
keeps the instrumentation *in* the engine unconditional and free:
:func:`begin_span` / :func:`end_span` / :func:`event` are no-ops
returning immediately while no telemetry session is active, so an
untraced campaign executes the exact same code path — the inertness the
differential tests pin down.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, IO, List, Optional, Union

TRACE_SCHEMA = "repro-trace/1"


class TraceWriter:
    """Append-only JSONL trace file with monotonic span bookkeeping."""

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = str(path)
        self._stream: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self._origin = time.perf_counter()
        self._next_id = 1
        self._open_spans: Dict[int, Dict[str, object]] = {}
        self._emit(
            {
                "event": "meta",
                "schema": TRACE_SCHEMA,
                "created_unix": time.time(),
                "pid": os.getpid(),
                "config": config or {},
            }
        )

    # ------------------------------------------------------------------ #
    def now(self) -> float:
        """Monotonic seconds since the trace origin."""
        return time.perf_counter() - self._origin

    def _emit(self, record: Dict[str, object]) -> None:
        if self._stream is None:
            return
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def begin_span(self, name: str, parent: Optional[int] = None, **attrs: object) -> int:
        span_id = self._next_id
        self._next_id += 1
        self._open_spans[span_id] = {
            "name": name,
            "parent": parent,
            "t_start": self.now(),
            "attrs": dict(attrs),
            "worker": None,
        }
        return span_id

    def end_span(
        self, span_id: int, *, worker: Optional[int] = None, **attrs: object
    ) -> None:
        span = self._open_spans.pop(span_id, None)
        if span is None:
            return
        span["attrs"].update(attrs)
        self._emit(
            {
                "event": "span",
                "name": span["name"],
                "id": span_id,
                "parent": span["parent"],
                "t_start": span["t_start"],
                "t_end": self.now(),
                "pid": os.getpid(),
                "worker": worker if worker is not None else span["worker"],
                "attrs": span["attrs"],
            }
        )

    def emit_span(
        self,
        name: str,
        *,
        parent: Optional[int] = None,
        t_start: float,
        t_end: float,
        worker: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Emit a completed span whose window was measured externally
        (e.g. per-point windows inside an already-timed batch job)."""
        span_id = self._next_id
        self._next_id += 1
        self._emit(
            {
                "event": "span",
                "name": name,
                "id": span_id,
                "parent": parent,
                "t_start": t_start,
                "t_end": t_end,
                "pid": os.getpid(),
                "worker": worker,
                "attrs": dict(attrs),
            }
        )
        return span_id

    def event(self, name: str, **fields: object) -> None:
        self._emit(
            {
                "event": "event",
                "name": name,
                "t": self.now(),
                "pid": os.getpid(),
                "fields": dict(fields),
            }
        )

    def emit_metrics(self, payload: List[Dict[str, object]]) -> None:
        self._emit({"event": "metrics", "t": self.now(), "metrics": payload})

    def emit_flight(self, reason: str, entries: List[Dict[str, object]]) -> None:
        self._emit(
            {
                "event": "flight",
                "t": self.now(),
                "pid": os.getpid(),
                "reason": reason,
                "entries": entries,
            }
        )

    def close(self) -> None:
        if self._stream is None:
            return
        # Abandoned open spans (crash paths) are emitted as-is so the
        # post-mortem still sees where time was going.
        for span_id in list(self._open_spans):
            self.end_span(span_id, aborted=True)
        stream, self._stream = self._stream, None
        stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class Telemetry:
    """One campaign's telemetry session: trace writer + progress config.

    ``trace_path`` and ``progress_interval`` are both optional and
    independent — a heartbeat needs no trace file and vice versa.  The
    writer opens lazily on :meth:`open` (called by activation) so a
    constructed-but-unused session touches no filesystem.
    """

    def __init__(
        self,
        trace_path: Optional[Union[str, "os.PathLike[str]"]] = None,
        *,
        progress_interval: Optional[float] = None,
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        if progress_interval is not None and progress_interval < 0:
            raise ValueError("progress_interval must be >= 0 (or None)")
        self.trace_path = str(trace_path) if trace_path is not None else None
        self.progress_interval = progress_interval
        self.config = dict(config) if config else {}
        self.writer: Optional[TraceWriter] = None

    def open(self) -> None:
        if self.trace_path is not None and self.writer is None:
            self.writer = TraceWriter(self.trace_path, config=self.config)

    def close(self) -> None:
        writer, self.writer = self.writer, None
        if writer is not None:
            writer.close()


# ---------------------------------------------------------------------- #
# module-level activation — the engine's no-op-when-off hooks            #
# ---------------------------------------------------------------------- #
_ACTIVE: Optional[Telemetry] = None


def activate(telemetry: Telemetry) -> Telemetry:
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a telemetry session is already active")
    telemetry.open()
    _ACTIVE = telemetry
    return telemetry


def deactivate() -> None:
    global _ACTIVE
    active_session, _ACTIVE = _ACTIVE, None
    if active_session is not None:
        active_session.close()


def active() -> Optional[Telemetry]:
    return _ACTIVE


def _writer() -> Optional[TraceWriter]:
    return _ACTIVE.writer if _ACTIVE is not None else None


def begin_span(name: str, parent: Optional[int] = None, **attrs: object) -> int:
    writer = _writer()
    return writer.begin_span(name, parent, **attrs) if writer is not None else 0


def end_span(span_id: int, *, worker: Optional[int] = None, **attrs: object) -> None:
    writer = _writer()
    if writer is not None and span_id:
        writer.end_span(span_id, worker=worker, **attrs)


def emit_span(
    name: str,
    *,
    parent: Optional[int] = None,
    t_start: float,
    t_end: float,
    worker: Optional[int] = None,
    **attrs: object,
) -> None:
    writer = _writer()
    if writer is not None:
        writer.emit_span(
            name, parent=parent, t_start=t_start, t_end=t_end, worker=worker, **attrs
        )


def event(name: str, **fields: object) -> None:
    writer = _writer()
    if writer is not None:
        writer.event(name, **fields)


def emit_metrics(payload: List[Dict[str, object]]) -> None:
    writer = _writer()
    if writer is not None:
        writer.emit_metrics(payload)


def emit_flight(reason: str, entries: List[Dict[str, object]]) -> None:
    writer = _writer()
    if writer is not None:
        writer.emit_flight(reason, entries)


def now() -> float:
    """Monotonic trace time (0.0 while no trace file is open)."""
    writer = _writer()
    return writer.now() if writer is not None else 0.0


__all__ = [
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceWriter",
    "activate",
    "active",
    "begin_span",
    "deactivate",
    "emit_flight",
    "emit_metrics",
    "emit_span",
    "end_span",
    "event",
    "now",
]
