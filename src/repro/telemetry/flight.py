"""The flight recorder: a bounded ring of recent harness events.

Every process keeps one (:func:`recorder` — fresh after a fork), always
on: recording is a deque append, and the buffer is bounded, so there is
nothing to configure and nothing to leak.  Its job is post-mortems —
when a point is quarantined, the recorder tail of the process that
watched it fail travels in the structured error payload
(:func:`tail_payload`), and when a campaign dies on SIGINT or an
internal error the tail is dumped to the trace file / console — so an
investigation starts from the last N things the harness actually did,
not from nothing.

Determinism contract: entries carry a monotonic timestamp and the
recording pid *internally* (for trace-file dumps), but
:func:`tail_payload` — the only form that ever reaches a store payload —
strips both.  Store payloads must stay byte-identical across runs and
across trace-on/trace-off, and sequence numbers + event fields are
deterministic where the schedule is; wall-clock and pids never are.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Ring capacity: enough to span several batches of dispatch/failure
#: events without ever mattering for memory.
DEFAULT_CAPACITY = 256

#: How many entries a quarantined point's payload carries by default.
DEFAULT_TAIL = 16


class FlightRecorder:
    """Bounded in-memory ring buffer of ``(seq, t, pid, kind, fields)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[Tuple[int, float, int, str, Dict[str, object]]] = deque(
            maxlen=capacity
        )
        self._seq = 0

    def record(self, kind: str, **fields: object) -> None:
        """Append one event.  ``fields`` must be JSON-serialisable and
        deterministic (no wall-clock, no pids) — they may end up in a
        quarantined point's store payload."""
        self._entries.append(
            (self._seq, time.perf_counter(), os.getpid(), kind, fields)
        )
        self._seq += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len``; the ring forgets)."""
        return self._seq

    def tail(self, count: int = DEFAULT_TAIL) -> List[Dict[str, object]]:
        """The last ``count`` entries *with* timestamps and pids — for
        trace-file dumps only, never for store payloads."""
        entries = list(self._entries)[-count:]
        return [
            {"seq": seq, "t": t, "pid": pid, "kind": kind, **fields}
            for seq, t, pid, kind, fields in entries
        ]

    def tail_payload(self, count: int = DEFAULT_TAIL) -> List[Dict[str, object]]:
        """The last ``count`` entries in store-payload form: sequence
        numbers and fields only (timestamps and pids stripped, so the
        payload is deterministic and byte-stable across runs)."""
        entries = list(self._entries)[-count:]
        return [
            {"seq": seq, "kind": kind, **fields}
            for seq, _t, _pid, kind, fields in entries
        ]

    def clear(self) -> None:
        self._entries.clear()
        self._seq = 0


# ---------------------------------------------------------------------- #
# the process-local recorder                                             #
# ---------------------------------------------------------------------- #
_RECORDER: Optional[FlightRecorder] = None
_RECORDER_PID: Optional[int] = None


def recorder() -> FlightRecorder:
    """This process's flight recorder (fresh after a fork, so a pool
    worker's tail describes *its* recent history, not the parent's)."""
    global _RECORDER, _RECORDER_PID
    pid = os.getpid()
    if _RECORDER is None or _RECORDER_PID != pid:
        _RECORDER = FlightRecorder()
        _RECORDER_PID = pid
    return _RECORDER


def record(kind: str, **fields: object) -> None:
    recorder().record(kind, **fields)


def tail_payload(count: int = DEFAULT_TAIL) -> List[Dict[str, object]]:
    return recorder().tail_payload(count)


def reset_recorder() -> None:
    """Drop the process recorder (tests)."""
    global _RECORDER, _RECORDER_PID
    _RECORDER = None
    _RECORDER_PID = None


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_TAIL",
    "FlightRecorder",
    "record",
    "recorder",
    "reset_recorder",
    "tail_payload",
]
