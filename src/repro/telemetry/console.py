"""One formatting and emission path for campaign console output.

Historically the CLI assembled its status output ad hoc: the stats line
in ``__main__``, the quarantine footer inside ``CampaignResult.render``,
errors wherever they were caught.  This module is the single seam:
every human-facing campaign line — the stats line, the quarantine
footer, the live heartbeat, structured errors, flight-recorder dumps —
is *formatted* by a function here and *emitted* through the process
:class:`Console`, so tests capture output by swapping the console
(:func:`set_console`) instead of scraping interpreter-level stdio, and
``--quiet`` is honoured in exactly one place.

``Console.quiet`` suppresses only :meth:`output` (rendered artefacts on
stdout); :meth:`status` and :meth:`error` lines (stderr) always emit —
CI smoke jobs grep the stats line out of quiet runs.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional, Sequence

from repro.telemetry.flight import DEFAULT_TAIL


class Console:
    """Where campaign output goes: artefacts to ``output_stream``
    (stdout), status/diagnostics to ``status_stream`` (stderr)."""

    def __init__(
        self,
        *,
        output_stream: Optional[IO[str]] = None,
        status_stream: Optional[IO[str]] = None,
        quiet: bool = False,
    ) -> None:
        self._output_stream = output_stream
        self._status_stream = status_stream
        self.quiet = quiet

    @property
    def output_stream(self) -> IO[str]:
        return self._output_stream if self._output_stream is not None else sys.stdout

    @property
    def status_stream(self) -> IO[str]:
        return self._status_stream if self._status_stream is not None else sys.stderr

    def output(self, text: str) -> None:
        """A rendered artefact (suppressed by ``quiet``)."""
        if not self.quiet:
            print(text, file=self.output_stream)

    def status(self, text: str) -> None:
        """A one-line status/progress message (never suppressed)."""
        print(text, file=self.status_stream)

    def error(self, text: str) -> None:
        print(text, file=self.status_stream)


_CONSOLE = Console()


def get_console() -> Console:
    return _CONSOLE


def set_console(console: Console) -> Console:
    """Swap the process console (tests); returns the previous one."""
    global _CONSOLE
    previous, _CONSOLE = _CONSOLE, console
    return previous


# ---------------------------------------------------------------------- #
# the shared formatting path                                             #
# ---------------------------------------------------------------------- #
def format_stats_line(result, elapsed: float) -> str:
    """The end-of-campaign ``[campaign] ...`` stats line."""
    rate = result.points / elapsed if elapsed > 0 else 0.0
    stats = result.stats
    return (
        f"[campaign] strata={len(result.strata)} points={result.points} "
        f"simulated={result.simulated} store-hits={result.store_hits} "
        f"store-misses={result.store_misses} "
        f"analytical={stats.analytical} "
        f"streamed={stats.streamed} "
        f"full={stats.full} "
        f"store_hits={stats.store_hits} "
        f"quarantined={result.quarantined_points} "
        f"retries={stats.retries} "
        f"pool-restarts={stats.worker_restarts} in {elapsed:.1f}s "
        f"({rate:.1f} points/s)"
    )


def format_heartbeat(
    *,
    done: int,
    expected: int,
    elapsed: float,
    stats,
    quarantined: int,
) -> str:
    """One live progress line for long sweeps (``--progress-interval``).

    ``expected`` is the grid's upper bound (strata × trials); early
    stopping and sampling shortfall only ever bring the real total
    *under* it, so the ETA is conservative.
    """
    rate = done / elapsed if elapsed > 0 else 0.0
    if rate > 0 and expected > done:
        eta = f"{(expected - done) / rate:.0f}s"
    else:
        eta = "--"
    percent = 100.0 * done / expected if expected else 100.0
    return (
        f"[campaign] progress {done}/{expected} ({percent:.0f}%) "
        f"{rate:.1f} points/s eta {eta} "
        f"retries={stats.retries} quarantined={quarantined} "
        f"pool-restarts={stats.worker_restarts}"
    )


def format_quarantine_footer(quarantined: Sequence) -> str:
    """The deterministic quarantine report appended to a summary.

    Byte-compatible with the footer historically inlined in
    ``CampaignResult.render`` — resumed-run summary identity depends on
    this rendering never drifting.
    """
    lines: List[str] = [
        "",
        f"Quarantined: {len(quarantined)} point(s) failed every "
        "attempt and are excluded",
        "from the table above (a --resume after repair re-simulates "
        "them):",
    ]
    for point in sorted(quarantined, key=lambda p: p.index):
        lines.append(f"  - {point.describe()}")
    return "\n".join(lines)


def format_flight_tail(entries: Sequence[dict], *, limit: int = DEFAULT_TAIL) -> str:
    """Human-readable flight-recorder tail for crash/SIGINT dumps."""
    shown = list(entries)[-limit:]
    if not shown:
        return "[campaign] flight recorder: (empty)"
    lines = [f"[campaign] flight recorder tail ({len(shown)} of {len(entries)}):"]
    for entry in shown:
        fields = {
            key: value
            for key, value in entry.items()
            if key not in ("seq", "t", "pid", "kind")
        }
        detail = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
        lines.append(
            f"[campaign]   #{entry.get('seq')} {entry.get('kind')}"
            + (f" {detail}" if detail else "")
        )
    return "\n".join(lines)


__all__ = [
    "Console",
    "format_flight_tail",
    "format_heartbeat",
    "format_quarantine_footer",
    "format_stats_line",
    "get_console",
    "set_console",
]
