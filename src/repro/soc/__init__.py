"""NGMP-like multicore SoC model.

The evaluation platform of the paper is a 4-core NGMP: private L1
caches per core, a shared bus, a shared L2 and off-chip memory.  The
paper runs its benchmarks on a single core, but the *reason* the whole
study exists is multicore interference: a write-through DL1 pushes every
store onto the shared bus, which inflates worst-case execution time
(WCET) dramatically [paper §I, §II-A and reference [9]].

:class:`repro.soc.ngmp.NgmpSoC` assembles per-core configurations around
shared bus/L2 parameters, and models inter-core interference through the
bus contention model (none / average / worst-case round-robin round),
which is the abstraction measurement-based WCET analyses use for this
class of arbiter.  :mod:`repro.soc.cosim` complements the analytic model
with a cycle-level lockstep co-simulation of all cores against an actual
shared round-robin arbiter.
"""

from repro.soc.ngmp import NgmpConfig, NgmpSoC, TaskPlacement
from repro.soc.interference import InterferenceScenario, contention_modes
from repro.soc.cosim import CoreSimOutcome, CoSimulationResult, co_simulate

__all__ = [
    "CoSimulationResult",
    "CoreSimOutcome",
    "InterferenceScenario",
    "NgmpConfig",
    "NgmpSoC",
    "TaskPlacement",
    "co_simulate",
    "contention_modes",
]
