"""Cycle-level multicore co-simulation of the NGMP.

Where :meth:`repro.soc.ngmp.NgmpSoC.run_task` *assumes* inter-core
interference analytically (every bus transaction charged an average or
worst-case round-robin wait), this module *observes* it: all N placed
tasks run concurrently, each on its own in-order pipeline and private
L1s/write buffer, and every bus transaction is arbitrated at the cycle
it is issued by one shared :class:`~repro.memory.bus.RoundRobinArbiter`.

The driver advances the per-core pipelines in lockstep through the
:meth:`~repro.pipeline.timing.TimingPipeline.step_instructions` hook:
after each instruction a core reports its memory-stage frontier, and the
scheduler always resumes the core that is earliest in simulated time, so
bus requests reach the arbiter approximately in cycle order.  Any
residual arrival skew is absorbed by the arbiter's physical guarantee —
no request ever waits more than one full round of the other masters —
which is exactly the per-transaction bound the analytic ``worst``
scenario charges.  Consequently, per task::

    cycles(isolation)  <=  cycles(co-simulated)  <=  cycles(worst analytic)

and the regression suite asserts this on every kernel.

Two L2 models are offered:

* ``shared_l2=False`` (default) — each core keeps private L2 *content*
  while sharing the bus *bandwidth*.  This models the way-partitioned
  shared L2 the NGMP provides for exactly this purpose: partitioning
  removes storage interference so that the round-robin bus bound is the
  only inter-core effect, which is the compositional setting in which
  measurement-based WCET bounds for this arbiter are sound.
* ``shared_l2=True`` — one L2 (and one memory) truly shared by all
  cores, with each task's lines mapped to a disjoint physical region.
  Storage interference (mutual evictions) then adds to the bus waits;
  the analytic bus-only bound no longer applies, which is the point:
  this mode quantifies what partitioning buys.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import EccPolicy
from repro.functional.simulator import FunctionalTrace, run_program
from repro.memory.bus import ArbiterStatistics, Bus, RoundRobinArbiter
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.l2_cache import SharedL2Cache
from repro.memory.main_memory import MainMemory
from repro.pipeline.config import CoreConfig
from repro.pipeline.timing import PipelineResult, TimingPipeline
from repro.soc.ngmp import NgmpConfig, TaskPlacement

#: Address stride separating the physical regions of co-running tasks in
#: the truly shared L2 (each task's working set is far smaller).
_CORE_ADDRESS_STRIDE = 1 << 28


@dataclass
class CoreSimOutcome:
    """Result of one core's task in a co-simulated run."""

    core_index: int
    program_name: str
    policy: EccPolicy
    timing: PipelineResult
    trace: FunctionalTrace

    @property
    def cycles(self) -> int:
        return self.timing.cycles


@dataclass
class CoSimulationResult:
    """All per-core outcomes of one lockstep multicore run."""

    outcomes: List[CoreSimOutcome]
    arbiter_stats: ArbiterStatistics
    shared_l2: bool
    l2_accesses_by_core: Dict[int, int] = field(default_factory=dict)
    l2_misses_by_core: Dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Cycles until the last core retires its last instruction."""
        return max((o.cycles for o in self.outcomes), default=0)

    def outcome(self, core_index: int) -> CoreSimOutcome:
        for outcome in self.outcomes:
            if outcome.core_index == core_index:
                return outcome
        raise KeyError(f"no task was placed on core {core_index}")

    def cycles(self, core_index: int) -> int:
        return self.outcome(core_index).cycles


def co_simulate(
    config: NgmpConfig,
    placements: Sequence[TaskPlacement],
    *,
    shared_l2: bool = False,
    max_instructions: int = 5_000_000,
    traces: Optional[Dict[int, FunctionalTrace]] = None,
) -> CoSimulationResult:
    """Run all ``placements`` concurrently against one shared bus.

    ``traces`` optionally maps core indices to pre-computed functional
    traces (the architectural stream is interference-independent, so
    reusing the isolation run's trace is always sound).
    """
    if not placements:
        raise ValueError("co_simulate needs at least one task placement")
    if len(placements) > config.cores:
        raise ValueError(
            f"{len(placements)} placements exceed the {config.cores}-core SoC"
        )
    seen = set()
    for placement in placements:
        if not 0 <= placement.core_index < config.cores:
            raise ValueError(
                f"core index {placement.core_index} outside 0..{config.cores - 1}"
            )
        if placement.core_index in seen:
            raise ValueError(f"core {placement.core_index} is placed twice")
        seen.add(placement.core_index)

    arbiter = RoundRobinArbiter(
        masters=len(placements), slot_cycles=config.bus_slot_cycles
    )
    shared_memory = shared_l2_cache = None
    if shared_l2:
        shared_memory = MainMemory(access_latency=config.hierarchy.memory_latency)
        shared_l2_cache = SharedL2Cache(
            config.hierarchy.l2, shared_memory, hit_latency=config.hierarchy.l2_hit_latency
        )

    generators = []
    contexts: Dict[int, tuple] = {}
    heap: List[tuple] = []
    for placement in placements:
        core = placement.core_index
        core_config = CoreConfig(
            pipeline=config.pipeline,
            # Interference comes from the arbiter, never from the
            # analytic contention model, in a co-simulated run.
            hierarchy=config.hierarchy.with_contention(0, "none"),
            policy=placement.policy,
            name=f"core{core}",
        )
        policy = core_config.resolved_policy()
        bus = Bus(
            request_latency=config.hierarchy.bus_request_latency,
            transfer_latency=config.hierarchy.bus_transfer_latency,
            arbiter=arbiter,
            master_id=core,
        )
        hierarchy = MemoryHierarchy(
            core_config.resolved_hierarchy_config(),
            bus=bus,
            l2=shared_l2_cache,
            memory=shared_memory,
            write_buffer_entries=core_config.pipeline.write_buffer_entries,
            core_id=core,
            l2_address_offset=core * _CORE_ADDRESS_STRIDE if shared_l2 else 0,
            track_l2_master=shared_l2,
        )
        if traces is not None and core in traces:
            trace = traces[core]
        else:
            trace = run_program(placement.program, max_instructions=max_instructions)
        pipeline = TimingPipeline(policy, hierarchy, core_config.pipeline)
        generator = pipeline.step_instructions(trace)
        slot = len(generators)
        generators.append(generator)
        contexts[slot] = (placement, policy, trace)
        # Every core starts at cycle zero; slot index breaks ties
        # deterministically.
        heap.append((0, slot))
    heapq.heapify(heap)

    finished: Dict[int, PipelineResult] = {}
    while heap:
        _, slot = heapq.heappop(heap)
        try:
            frontier = next(generators[slot])
        except StopIteration as stop:
            finished[slot] = stop.value
            continue
        heapq.heappush(heap, (frontier, slot))

    outcomes = []
    for slot in sorted(finished):
        placement, policy, trace = contexts[slot]
        outcomes.append(
            CoreSimOutcome(
                core_index=placement.core_index,
                program_name=placement.program.name,
                policy=policy,
                timing=finished[slot],
                trace=trace,
            )
        )
    outcomes.sort(key=lambda outcome: outcome.core_index)
    return CoSimulationResult(
        outcomes=outcomes,
        arbiter_stats=arbiter.stats,
        shared_l2=shared_l2,
        l2_accesses_by_core=dict(shared_l2_cache.accesses_by_master)
        if shared_l2_cache is not None
        else {},
        l2_misses_by_core=dict(shared_l2_cache.misses_by_master)
        if shared_l2_cache is not None
        else {},
    )
