"""The NGMP-like SoC: four LEON4-class cores around a shared bus and L2."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.isa.program import Program
from repro.memory.config import MemoryHierarchyConfig
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.simulation import SimulationResult, simulate_program
from repro.soc.interference import InterferenceScenario


@dataclass(frozen=True)
class NgmpConfig:
    """Topology and shared-resource parameters of the SoC."""

    cores: int = 4
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    hierarchy: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    #: Bus slot length (cycles) used by the round-robin contention model.
    bus_slot_cycles: int = 6

    def core_config(
        self,
        policy: Union[str, EccPolicyKind, EccPolicy],
        *,
        contenders: int = 0,
        mode: str = "none",
        name: str = "core0",
    ) -> CoreConfig:
        hierarchy = self.hierarchy.with_contention(contenders, mode)
        return CoreConfig(
            pipeline=self.pipeline, hierarchy=hierarchy, policy=policy, name=name
        )


@dataclass
class TaskPlacement:
    """A program pinned to one core of the SoC under a given ECC policy."""

    program: Program
    core_index: int = 0
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.LAEC


class NgmpSoC:
    """A 4-core NGMP-like system.

    The evaluation methodology mirrors the paper: one task of interest
    runs on one core; the other cores are represented by the bus
    contention model (an interference abstraction rather than a lockstep
    co-simulation, which is also how measurement-based WCET bounds for
    round-robin buses are constructed).  ``run_task`` returns the full
    single-core :class:`~repro.simulation.SimulationResult` with the
    configured interference applied to every bus transaction.
    """

    def __init__(self, config: Optional[NgmpConfig] = None) -> None:
        self.config = config or NgmpConfig()

    # ------------------------------------------------------------------ #
    def run_task(
        self,
        placement: TaskPlacement,
        *,
        scenario: Optional[InterferenceScenario] = None,
    ) -> SimulationResult:
        """Run one task under the given interference scenario."""
        scenario = scenario or InterferenceScenario("isolation", 0, "none")
        if not 0 <= placement.core_index < self.config.cores:
            raise ValueError(
                f"core index {placement.core_index} outside 0..{self.config.cores - 1}"
            )
        contenders = min(scenario.contenders, self.config.cores - 1)
        core_config = self.config.core_config(
            placement.policy,
            contenders=contenders,
            mode=scenario.mode,
            name=f"core{placement.core_index}",
        )
        core_config = replace(
            core_config,
            hierarchy=replace(
                core_config.hierarchy,
                bus_contenders=contenders,
                bus_contention_mode=scenario.mode,
            ),
        )
        return simulate_program(
            placement.program, policy=placement.policy, config=core_config
        )

    # ------------------------------------------------------------------ #
    def wcet_estimate(
        self,
        placement: TaskPlacement,
        *,
        contenders: Optional[int] = None,
    ) -> Dict[str, int]:
        """Measurement-based execution-time bounds for one task.

        Returns observed cycles in isolation, under average contention and
        under worst-case contention (the latter is the WCET estimate a
        certification argument would use for this arbiter).
        """
        if contenders is None:
            contenders = self.config.cores - 1
        results: Dict[str, int] = {}
        for scenario in (
            InterferenceScenario("isolation", 0, "none"),
            InterferenceScenario("average", contenders, "average"),
            InterferenceScenario("worst", contenders, "worst"),
        ):
            results[scenario.name] = self.run_task(placement, scenario=scenario).cycles
        return results

    def compare_write_policies(
        self,
        program: Program,
        *,
        contenders: Optional[int] = None,
    ) -> Dict[str, Dict[str, int]]:
        """WT+parity versus WB+LAEC execution-time bounds (paper motivation).

        This reproduces the shape of the argument in §I/§II-A: under
        worst-case bus contention a write-through DL1 (every store on the
        bus) inflates the WCET estimate far more than a write-back DL1
        protected by LAEC.
        """
        comparison: Dict[str, Dict[str, int]] = {}
        for label, policy in (
            ("wt-parity", EccPolicyKind.WT_PARITY),
            ("wb-laec", EccPolicyKind.LAEC),
            ("wb-no-ecc", EccPolicyKind.NO_ECC),
        ):
            placement = TaskPlacement(program=program, policy=policy)
            comparison[label] = self.wcet_estimate(placement, contenders=contenders)
        return comparison

    def describe(self) -> str:
        hierarchy = self.config.hierarchy
        return (
            f"NGMP-like SoC: {self.config.cores} in-order cores, "
            f"private {hierarchy.l1d.size_bytes // 1024} KiB DL1 / "
            f"{hierarchy.l1i.size_bytes // 1024} KiB IL1, shared "
            f"{hierarchy.l2.size_bytes // 1024} KiB L2 behind a round-robin bus"
        )
