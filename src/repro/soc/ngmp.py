"""The NGMP-like SoC: four LEON4-class cores around a shared bus and L2."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.policies import EccPolicy, EccPolicyKind
from repro.isa.program import Program
from repro.memory.config import MemoryHierarchyConfig
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.scenarios.spec import SimulationSpec
from repro.simulation import SimulationResult, simulate_spec
from repro.soc.interference import InterferenceScenario


@dataclass(frozen=True)
class NgmpConfig:
    """Topology and shared-resource parameters of the SoC."""

    cores: int = 4
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    hierarchy: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    @property
    def bus_slot_cycles(self) -> int:
        """Round-robin slot length (cycles).

        Read from the hierarchy config, which is the single source of
        truth shared by the analytic contention model and the
        co-simulation arbiter — so the two interference models can never
        disagree about the per-transaction round-robin bound.
        """
        return self.hierarchy.bus_slot_cycles

    def core_config(
        self,
        policy: Union[str, EccPolicyKind, EccPolicy],
        *,
        contenders: int = 0,
        mode: str = "none",
        name: str = "core0",
    ) -> CoreConfig:
        hierarchy = self.hierarchy.with_contention(contenders, mode)
        return CoreConfig(
            pipeline=self.pipeline, hierarchy=hierarchy, policy=policy, name=name
        )


@dataclass
class TaskPlacement:
    """A program pinned to one core of the SoC under a given ECC policy."""

    program: Program
    core_index: int = 0
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.LAEC


class NgmpSoC:
    """A 4-core NGMP-like system.

    Two complementary evaluation modes are offered:

    * ``run_task`` mirrors the paper's methodology: one task of interest
      runs on one core and the other cores are represented by the
      analytic bus contention model (the abstraction measurement-based
      WCET bounds for round-robin buses are constructed from).  It
      returns the full single-core
      :class:`~repro.simulation.SimulationResult` with the configured
      interference applied to every bus transaction.
    * ``co_simulate`` steps all placed tasks cycle-level in lockstep
      against a shared round-robin bus arbiter (and optionally a truly
      shared L2), observing interference instead of assuming it; per
      task the observed cycles always fall between the ``isolation`` and
      ``worst`` analytic bounds of :meth:`wcet_estimate`.
    """

    def __init__(self, config: Optional[NgmpConfig] = None) -> None:
        self.config = config or NgmpConfig()

    # ------------------------------------------------------------------ #
    def build_spec(
        self,
        placement: TaskPlacement,
        *,
        scenario: Optional[InterferenceScenario] = None,
    ) -> SimulationSpec:
        """Translate a placement + scenario into a declarative spec.

        Contender counts are clamped to the SoC topology (at most
        ``cores - 1`` other masters can interfere).
        """
        scenario = scenario or InterferenceScenario("isolation", 0, "none")
        if not 0 <= placement.core_index < self.config.cores:
            raise ValueError(
                f"core index {placement.core_index} outside 0..{self.config.cores - 1}"
            )
        contenders = min(scenario.contenders, self.config.cores - 1)
        if contenders != scenario.contenders:
            scenario = InterferenceScenario(scenario.name, contenders, scenario.mode)
        return SimulationSpec(
            policy=placement.policy,
            pipeline=self.config.pipeline,
            hierarchy=self.config.hierarchy,
            interference=scenario,
            core_index=placement.core_index,
        )

    def run_task(
        self,
        placement: TaskPlacement,
        *,
        scenario: Optional[InterferenceScenario] = None,
        trace=None,
    ) -> SimulationResult:
        """Run one task under the given (analytic) interference scenario."""
        spec = self.build_spec(placement, scenario=scenario)
        return simulate_spec(spec, program=placement.program, trace=trace)

    def co_simulate(
        self,
        placements: Sequence[TaskPlacement],
        *,
        shared_l2: bool = False,
        max_instructions: int = 5_000_000,
        traces=None,
    ):
        """Cycle-level lockstep co-simulation of all placed tasks.

        All tasks run concurrently against one shared round-robin bus
        arbiter (and, with ``shared_l2=True``, one truly shared L2); see
        :mod:`repro.soc.cosim` for the model and its relationship to the
        analytic bounds of :meth:`wcet_estimate`.  Supports mixed
        per-core ECC policies and heterogeneous programs.  Returns a
        :class:`repro.soc.cosim.CoSimulationResult`.
        """
        # Imported lazily: cosim imports this module at load time.
        from repro.soc.cosim import co_simulate

        return co_simulate(
            self.config,
            placements,
            shared_l2=shared_l2,
            max_instructions=max_instructions,
            traces=traces,
        )

    # ------------------------------------------------------------------ #
    def wcet_estimate(
        self,
        placement: TaskPlacement,
        *,
        contenders: Optional[int] = None,
        trace=None,
    ) -> Dict[str, int]:
        """Measurement-based execution-time bounds for one task.

        Returns observed cycles in isolation, under average contention and
        under worst-case contention (the latter is the WCET estimate a
        certification argument would use for this arbiter).  ``trace``
        optionally reuses one functional trace for all three runs (the
        architectural stream is interference-independent).
        """
        if contenders is None:
            contenders = self.config.cores - 1
        results: Dict[str, int] = {}
        for scenario in (
            InterferenceScenario("isolation", 0, "none"),
            InterferenceScenario("average", contenders, "average"),
            InterferenceScenario("worst", contenders, "worst"),
        ):
            results[scenario.name] = self.run_task(
                placement, scenario=scenario, trace=trace
            ).cycles
        return results

    def compare_write_policies(
        self,
        program: Program,
        *,
        contenders: Optional[int] = None,
    ) -> Dict[str, Dict[str, int]]:
        """WT+parity versus WB+LAEC execution-time bounds (paper motivation).

        This reproduces the shape of the argument in §I/§II-A: under
        worst-case bus contention a write-through DL1 (every store on the
        bus) inflates the WCET estimate far more than a write-back DL1
        protected by LAEC.
        """
        comparison: Dict[str, Dict[str, int]] = {}
        for label, policy in (
            ("wt-parity", EccPolicyKind.WT_PARITY),
            ("wb-laec", EccPolicyKind.LAEC),
            ("wb-no-ecc", EccPolicyKind.NO_ECC),
        ):
            placement = TaskPlacement(program=program, policy=policy)
            comparison[label] = self.wcet_estimate(placement, contenders=contenders)
        return comparison

    def describe(self) -> str:
        hierarchy = self.config.hierarchy
        return (
            f"NGMP-like SoC: {self.config.cores} in-order cores, "
            f"private {hierarchy.l1d.size_bytes // 1024} KiB DL1 / "
            f"{hierarchy.l1i.size_bytes // 1024} KiB IL1, shared "
            f"{hierarchy.l2.size_bytes // 1024} KiB L2 behind a round-robin bus"
        )
