"""Inter-core interference scenarios for WCET experiments.

The :class:`InterferenceScenario` value type itself lives in
:mod:`repro.scenarios.interference` (it is part of the declarative
scenario model); this module re-exports it under its historical import
path and provides the SoC-aware helpers built on top of it.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.scenarios.interference import InterferenceScenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ngmp imports us)
    from repro.soc.ngmp import NgmpConfig

__all__ = ["InterferenceScenario", "contention_modes"]


def contention_modes(
    contenders: Optional[int] = None, *, config: Optional["NgmpConfig"] = None
) -> List[InterferenceScenario]:
    """The three scenarios used by the WT-vs-WB WCET experiment.

    The default number of contenders is derived from the SoC topology
    (``config.cores - 1``, i.e. every other core of the NGMP is busy)
    rather than hard-coded; pass ``contenders`` to override it or
    ``config`` to derive it from a non-default SoC.
    """
    if contenders is None:
        if config is None:
            # Imported lazily: ngmp.py imports this module at load time.
            from repro.soc.ngmp import NgmpConfig

            config = NgmpConfig()
        contenders = max(config.cores - 1, 0)
    return [
        InterferenceScenario("isolation", 0, "none"),
        InterferenceScenario("average-contention", contenders, "average"),
        InterferenceScenario("worst-contention", contenders, "worst"),
    ]
