"""Ablation A3: fault-injection campaign on the ECC codes.

The paper's whole premise is that SECDED in the DL1 makes dirty data
safe against soft errors.  This campaign verifies, on the actual codec
implementations, the guarantees every scheme relies on:

* SECDED corrects 100 % of single-bit flips and detects 100 % of
  double-bit flips (never silently mis-correcting them);
* parity detects single flips but corrects nothing, so it is only safe
  when a clean copy exists elsewhere (write-through DL1);
* plain Hamming SEC silently mis-corrects double flips, which is why
  the DED part matters for certification arguments.

It also cross-checks the empirical rates against the analytical
reliability model for a given raw bit-upset probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import Table
from repro.ecc import (
    FaultInjector,
    FaultModel,
    HammingSecCode,
    HsiaoSecDedCode,
    InjectionOutcome,
    ParityCode,
    ReliabilityModel,
)


@dataclass
class CampaignRow:
    """Outcome rates of one code under one fault multiplicity."""

    code: str
    flips: int
    trials: int
    corrected_rate: float
    detected_rate: float
    sdc_rate: float
    masked_rate: float


def run(
    *,
    trials_per_point: int = 2000,
    seed: int = 2019,
    data_words: Optional[List[int]] = None,
) -> List[CampaignRow]:
    """Inject single- and double-bit faults into each code.

    Each code gets its own explicitly seeded :class:`random.Random`
    (``random.Random(seed)``, matching the seed implementation trial for
    trial), so the campaign never touches global RNG state and the
    per-code points can be farmed out to parallel workers without
    changing any reported percentage.
    """
    rows: List[CampaignRow] = []
    codes = [ParityCode(), HammingSecCode(), HsiaoSecDedCode()]
    for code in codes:
        injector = FaultInjector(code, rng=random.Random(seed))
        for flips in (1, 2):
            report = injector.run_campaign(
                trials=trials_per_point,
                fault_model=FaultModel(multiplicity_weights={flips: 1.0}),
                data_source=iter(data_words) if data_words else None,
            )
            rows.append(
                CampaignRow(
                    code=code.name,
                    flips=flips,
                    trials=report.total,
                    corrected_rate=report.rate(InjectionOutcome.CORRECTED),
                    detected_rate=report.rate(InjectionOutcome.DETECTED),
                    sdc_rate=report.rate(InjectionOutcome.SILENT_DATA_CORRUPTION),
                    masked_rate=report.rate(InjectionOutcome.MASKED),
                )
            )
    return rows


def analytical_comparison(*, bit_upset_rate_per_hour: float = 1e-9) -> Dict[str, Dict[str, float]]:
    """Array-level analytical outcome probabilities for a 16 KiB DL1."""
    model = ReliabilityModel(
        words=16 * 1024 // 4, bit_upset_rate_per_hour=bit_upset_rate_per_hour
    )
    return model.compare([ParityCode(), HammingSecCode(), HsiaoSecDedCode()])


def render(rows: List[CampaignRow]) -> str:
    table = Table(
        title="Ablation A3: fault-injection outcomes per code and flip count",
        columns=["code", "flips", "trials", "corrected %", "detected %", "SDC %", "masked %"],
    )
    for row in rows:
        table.add_row(
            code=row.code,
            flips=row.flips,
            trials=row.trials,
            **{
                "corrected %": row.corrected_rate * 100,
                "detected %": row.detected_rate * 100,
                "SDC %": row.sdc_rate * 100,
                "masked %": row.masked_rate * 100,
            },
        )
    note = (
        "SECDED corrects all single flips and detects all double flips; parity\n"
        "only detects odd flip counts; Hamming SEC silently mis-corrects double\n"
        "flips - the reason the paper's DL1 needs SECDED for dirty data."
    )
    return table.render(float_format="{:.1f}") + "\n" + note
