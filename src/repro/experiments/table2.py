"""Table II: per-benchmark load statistics.

The paper's Table II reports, per EEMBC benchmark, the percentage of
loads that hit the DL1, the percentage of loads with a consumer at
distance 1-2, and loads as a percentage of all instructions.  This
experiment measures the same three statistics on our kernels (using the
no-ECC baseline run) and places them next to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import Table
from repro.experiments.runner import ExperimentRunner, KernelRunSet
from repro.workloads.table2_reference import PAPER_TABLE2, PAPER_TABLE2_AVERAGE


@dataclass(frozen=True)
class Table2Result:
    """Measured and reference statistics for one benchmark."""

    benchmark: str
    measured_pct_hit_loads: float
    measured_pct_dependent_loads: float
    measured_pct_loads: float
    paper_pct_hit_loads: Optional[float]
    paper_pct_dependent_loads: Optional[float]
    paper_pct_loads: Optional[float]


def run(
    *, runner: Optional[ExperimentRunner] = None, run_set: Optional[KernelRunSet] = None
) -> List[Table2Result]:
    """Measure the Table II statistics for every kernel."""
    if run_set is None:
        runner = runner or ExperimentRunner()
        run_set = runner.run_all()
    rows: List[Table2Result] = []
    for benchmark in run_set.benchmarks():
        baseline = run_set.baseline(benchmark)
        measured = baseline.stats.table2_row()
        reference = PAPER_TABLE2.get(benchmark)
        rows.append(
            Table2Result(
                benchmark=benchmark,
                measured_pct_hit_loads=measured["pct_hit_loads"],
                measured_pct_dependent_loads=measured["pct_dependent_loads"],
                measured_pct_loads=measured["pct_loads"],
                paper_pct_hit_loads=reference.pct_hit_loads if reference else None,
                paper_pct_dependent_loads=(
                    reference.pct_dependent_loads if reference else None
                ),
                paper_pct_loads=reference.pct_loads if reference else None,
            )
        )
    return rows


def averages(rows: List[Table2Result]) -> Dict[str, float]:
    """Average of the measured statistics across benchmarks."""
    if not rows:
        return {"pct_hit_loads": 0.0, "pct_dependent_loads": 0.0, "pct_loads": 0.0}
    n = len(rows)
    return {
        "pct_hit_loads": sum(r.measured_pct_hit_loads for r in rows) / n,
        "pct_dependent_loads": sum(r.measured_pct_dependent_loads for r in rows) / n,
        "pct_loads": sum(r.measured_pct_loads for r in rows) / n,
    }


def render(rows: List[Table2Result]) -> str:
    """Render the measured-versus-paper Table II."""
    table = Table(
        title="Table II: per-benchmark load statistics (measured vs paper)",
        columns=[
            "benchmark",
            "hit loads % (ours)",
            "hit loads % (paper)",
            "dep. loads % (ours)",
            "dep. loads % (paper)",
            "loads % (ours)",
            "loads % (paper)",
        ],
    )
    for row in rows:
        table.add_row(
            benchmark=row.benchmark,
            **{
                "hit loads % (ours)": row.measured_pct_hit_loads,
                "hit loads % (paper)": row.paper_pct_hit_loads or 0.0,
                "dep. loads % (ours)": row.measured_pct_dependent_loads,
                "dep. loads % (paper)": row.paper_pct_dependent_loads or 0.0,
                "loads % (ours)": row.measured_pct_loads,
                "loads % (paper)": row.paper_pct_loads or 0.0,
            },
        )
    mean = averages(rows)
    table.add_row(
        benchmark="average",
        **{
            "hit loads % (ours)": mean["pct_hit_loads"],
            "hit loads % (paper)": PAPER_TABLE2_AVERAGE.pct_hit_loads,
            "dep. loads % (ours)": mean["pct_dependent_loads"],
            "dep. loads % (paper)": PAPER_TABLE2_AVERAGE.pct_dependent_loads,
            "loads % (ours)": mean["pct_loads"],
            "loads % (paper)": PAPER_TABLE2_AVERAGE.pct_loads,
        },
    )
    return table.render(float_format="{:.1f}")
