"""Figure 8: execution-time increase of each ECC scheme over no-ECC.

The paper's headline result: Extra Cycle costs ~17 % on average, Extra
Stage ~10 %, LAEC stays below 4 % (below 1 % for several benchmarks) and
never does worse than Extra Stage.  This experiment reproduces the
per-benchmark series and the average column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import PolicyComparison, compare_policies
from repro.analysis.reporting import Table, bar_chart
from repro.core.policies import EccPolicyKind
from repro.experiments.runner import ExperimentRunner, KernelRunSet
from repro.workloads.table2_reference import PAPER_FIGURE8_AVERAGE_INCREASE

COMPARED_POLICIES = (
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
)


@dataclass
class Figure8Result:
    """The comparison object plus the paper's reference averages."""

    comparison: PolicyComparison
    paper_average_increase: Dict[str, float]

    def average_increase(self, policy: EccPolicyKind) -> float:
        return self.comparison.average_increase(policy.value)

    def laec_improvement_over_extra_stage(self) -> float:
        return self.comparison.improvement_over(
            EccPolicyKind.LAEC.value, EccPolicyKind.EXTRA_STAGE.value
        )

    def laec_improvement_over_extra_cycle(self) -> float:
        return self.comparison.improvement_over(
            EccPolicyKind.LAEC.value, EccPolicyKind.EXTRA_CYCLE.value
        )


def run(
    *, runner: Optional[ExperimentRunner] = None, run_set: Optional[KernelRunSet] = None
) -> Figure8Result:
    """Simulate (or reuse) the kernel × policy matrix and compare policies."""
    if run_set is None:
        runner = runner or ExperimentRunner()
        run_set = runner.run_all()
    comparison = compare_policies(
        run_set.results, baseline=EccPolicyKind.NO_ECC.value
    )
    return Figure8Result(
        comparison=comparison,
        paper_average_increase=dict(PAPER_FIGURE8_AVERAGE_INCREASE),
    )


def render(result: Figure8Result) -> str:
    """Render Figure 8 as a table of normalised execution times plus bars."""
    comparison = result.comparison
    table = Table(
        title=(
            "Figure 8: execution-time increase over the no-ECC baseline "
            "(1.00 = no increase)"
        ),
        columns=["benchmark", "extra-cycle", "extra-stage", "laec"],
    )
    for row in comparison.as_rows():
        table.add_row(
            benchmark=row["benchmark"],
            **{
                "extra-cycle": 1.0 + row[EccPolicyKind.EXTRA_CYCLE.value],
                "extra-stage": 1.0 + row[EccPolicyKind.EXTRA_STAGE.value],
                "laec": 1.0 + row[EccPolicyKind.LAEC.value],
            },
        )
    lines: List[str] = [table.render(float_format="{:.3f}"), ""]
    lines.append("Average execution-time increase (ours vs paper):")
    bars = {}
    for policy in COMPARED_POLICIES:
        ours = comparison.average_increase(policy.value)
        paper = result.paper_average_increase.get(policy.value)
        bars[policy.value] = ours
        paper_text = f"{paper * 100:.0f}%" if paper is not None else "n/a"
        lines.append(
            f"  {policy.value:12s} ours {ours * 100:5.1f}%   paper ~{paper_text}"
        )
    lines.append("")
    lines.append(bar_chart(bars, unit=" (fraction)"))
    lines.append("")
    lines.append(
        "LAEC reduces the average degradation by "
        f"{result.laec_improvement_over_extra_stage() * 100:.1f} percentage points "
        "vs Extra Stage and "
        f"{result.laec_improvement_over_extra_cycle() * 100:.1f} vs Extra Cycle "
        "(paper: ~6 and ~13)."
    )
    return "\n".join(lines)
