"""Table I: commercial processors and how they protect their L1 caches.

Table I of the paper is a survey, not a measurement; we carry it as
structured data so the benchmark harness can regenerate it verbatim and
so tests can assert the qualitative point it makes (no surveyed LEON
part supports a write-back DL1, hence the need for schemes like LAEC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import Table


@dataclass(frozen=True)
class CommercialProcessor:
    """One row of Table I."""

    name: str
    frequency_mhz: int
    supports_wt_l1: bool
    wt_protection: str
    supports_wb_l1: bool
    wb_protection: str


TABLE1_PROCESSORS: List[CommercialProcessor] = [
    CommercialProcessor("ARM Cortex R5", 160, True, "ECC/parity", True, "ECC/parity"),
    CommercialProcessor("ARM Cortex M7", 200, True, "ECC", True, "ECC"),
    CommercialProcessor("Freescale PowerQUICC", 250, True, "Parity", True, "parity"),
    CommercialProcessor("Cobham LEON 3", 100, True, "parity", False, ""),
    CommercialProcessor("Cobham LEON 4", 150, True, "parity", False, ""),
]


def run() -> List[CommercialProcessor]:
    """Return the survey rows (kept as a callable for harness uniformity)."""
    return list(TABLE1_PROCESSORS)


def render(processors: List[CommercialProcessor] | None = None) -> str:
    """Render Table I in the paper's layout."""
    processors = processors if processors is not None else run()
    table = Table(
        title="Table I: Commercial processors and their characteristics",
        columns=["Processor", "Frequency", "L1 WT", "L1 WB"],
    )
    for cpu in processors:
        table.add_row(
            Processor=cpu.name,
            Frequency=f"{cpu.frequency_mhz}MHz",
            **{
                "L1 WT": f"Yes, {cpu.wt_protection}" if cpu.supports_wt_l1 else "No",
                "L1 WB": f"Yes, {cpu.wb_protection}" if cpu.supports_wb_l1 else "No",
            },
        )
    return table.render()
