"""Uniform experiment framework.

Every paper artefact (table, figure, ablation) is exposed as an
:class:`Experiment`: a named, self-describing unit that knows how to
compute its result, render it to text, and — when it regenerates one of
the artefacts under ``benchmarks/output/`` — which file it owns.  The
registry makes the set discoverable (``python -m repro --list``) and the
shared :class:`ExperimentContext` makes the expensive ingredient — the
kernel × policy simulation matrix — computed once per campaign no matter
how many experiments consume it.

The default campaign scale (:data:`DEFAULT_CAMPAIGN_SCALE`) is the one
the benchmark harness has always used: 0.4 keeps the full 16-kernel ×
4-policy matrix fast while preserving the loop-dominated steady-state
behaviour, so overhead percentages match the full-scale runs.
"""

from __future__ import annotations

import abc
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.runner import ExperimentRunner, KernelRunSet

#: Scale applied to every kernel's iteration counts in a default
#: campaign.  Shared with ``benchmarks/conftest.py``.
DEFAULT_CAMPAIGN_SCALE = 0.4


@dataclass
class ExperimentContext:
    """Shared campaign state: one lazily-built kernel × policy matrix.

    ``workers`` opts the runner into its process-pool fan-out
    (``None`` = serial, ``0`` = one worker per CPU).  Results are
    deterministic either way, so artefacts are byte-identical regardless
    of parallelism.

    ``seed`` overrides the RNG seed of the experiments that draw random
    trials (``fault_campaign``, ``campaign_summary``); ``None`` keeps
    each experiment's committed default, so artefacts stay
    byte-identical.  ``store`` attaches a
    :class:`~repro.store.ResultStore` as a cross-process result cache,
    and ``force`` bypasses every cache layer (in-memory run set *and*
    store reads) so stored results can be validated against fresh
    simulations.
    """

    scale: float = DEFAULT_CAMPAIGN_SCALE
    workers: Optional[int] = None
    seed: Optional[int] = None
    force: bool = False
    store: Optional[object] = None
    _runner: Optional[ExperimentRunner] = field(default=None, repr=False)
    _force_pending: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        self._force_pending = self.force

    def runner(self) -> ExperimentRunner:
        if self._runner is None:
            self._runner = ExperimentRunner(
                scale=self.scale, max_workers=self.workers, store=self.store
            )
        return self._runner

    def run_set(self) -> KernelRunSet:
        # ``force`` applies to the first build only: later consumers of
        # the same context share the freshly recomputed matrix.
        run_set = self.runner().run_all(force=self._force_pending)
        self._force_pending = False
        return run_set


@dataclass
class ExperimentOutput:
    """What one experiment produced."""

    name: str
    artifact: Optional[str]
    text: str
    data: object

    def write(self, directory: pathlib.Path) -> Optional[pathlib.Path]:
        """Write the rendered text to ``<directory>/<artifact>.txt``.

        Matches the benchmark harness' ``save_artifact`` byte-for-byte
        (trailing newline included).  Returns the written path, or
        ``None`` for experiments that own no artefact.
        """
        if self.artifact is None:
            return None
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.artifact}.txt"
        path.write_text(self.text + "\n", encoding="utf-8")
        return path


class Experiment(abc.ABC):
    """One named, reproducible experiment.

    Subclasses set ``name``/``description``, optionally ``artifact``
    (the ``benchmarks/output/<artifact>.txt`` stem they regenerate) and
    ``uses_run_set`` (whether they consume the shared kernel × policy
    matrix), and implement :meth:`build` and :meth:`render`.
    """

    name: str = ""
    description: str = ""
    artifact: Optional[str] = None
    #: Whether this experiment consumes the shared kernel × policy matrix
    #: (used by the CLI to decide when the campaign context must be built).
    uses_run_set: bool = False

    @abc.abstractmethod
    def build(self, context: ExperimentContext):
        """Compute and return the experiment's structured result."""

    @abc.abstractmethod
    def render(self, result) -> str:
        """Turn :meth:`build`'s result into the artefact text."""

    def execute(self, context: Optional[ExperimentContext] = None) -> ExperimentOutput:
        """Build and render in one step."""
        context = context or ExperimentContext()
        result = self.build(context)
        return ExperimentOutput(
            name=self.name,
            artifact=self.artifact,
            text=self.render(result),
            data=result,
        )


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_class):
    """Class decorator: instantiate and register an :class:`Experiment`."""
    experiment = experiment_class()
    if not experiment.name:
        raise ValueError(f"{experiment_class.__name__} declares no name")
    if experiment.name in _REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment_class


def experiment_names() -> List[str]:
    return sorted(_REGISTRY)


def get_experiment(name: str) -> Experiment:
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(experiment_names())}"
        )
    return _REGISTRY[key]


def all_experiments() -> List[Experiment]:
    return [_REGISTRY[name] for name in experiment_names()]
