"""Shared experiment infrastructure.

Most experiments need the same expensive ingredient: every kernel
simulated under every Figure 8 policy.  :class:`ExperimentRunner` builds
that result set once (re-using one functional trace per kernel, since the
policies do not change architectural behaviour) and hands it to the
individual experiments.

Two fast paths keep repeated campaigns cheap (see PERFORMANCE.md):

* a module-level **functional-trace cache** keyed by ``(kernel, scale)``.
  Traces are policy-independent — the architectural stream is identical
  under every ECC scheme by construction — so the semantics of each
  kernel are simulated exactly once per process no matter how many
  runners, experiments or policies replay it;
* an opt-in **process-pool fan-out** (``max_workers=``) that distributes
  whole kernels (one functional simulation + all policy timing runs)
  across worker processes.  Results are reassembled in kernel order, so
  the run set is deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.caching import lru_get, lru_put
from repro.core.policies import EccPolicyKind
from repro.functional.simulator import FunctionalTrace, run_program
from repro.isa.program import Program
from repro.scenarios.spec import SimulationSpec
from repro.simulation import SimulationResult, simulate_spec
from repro.workloads import KERNEL_NAMES, build_kernel

FIGURE8_POLICIES = (
    EccPolicyKind.NO_ECC,
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
)

#: (kernel name, scale) -> (assembled program, functional trace).  Traces
#: and programs are treated as immutable once built; everything that
#: consumes them (the timing engine, Table II accounting, chronograms)
#: only reads.
_KERNEL_CACHE: Dict[Tuple[str, float], Tuple[Program, FunctionalTrace]] = {}

#: Upper bound on cached (kernel, scale) traces.  The full campaign needs
#: 16 (one per kernel at one scale); the cap keeps long-lived processes
#: sweeping many scales from accumulating traces without bound.  Eviction
#: is least-recently-used: every hit moves its entry to the back of the
#: (insertion-ordered) dict, so the hottest traces survive long fault
#: campaigns that cycle through many scales — FIFO would evict exactly
#: the traces every stratum keeps coming back to.
KERNEL_TRACE_CACHE_MAX_ENTRIES = 48


def cached_kernel_trace(name: str, scale: float) -> Tuple[Program, FunctionalTrace]:
    """Build (or fetch) the program and functional trace of one kernel.

    The cache key is ``(name, scale)``: the functional behaviour of a
    kernel depends on nothing else, and in particular not on the ECC
    policy or pipeline configuration being timed.  The cache holds at
    most :data:`KERNEL_TRACE_CACHE_MAX_ENTRIES` traces; the
    least-recently-used entry is evicted when a new one would exceed the
    cap (a hit refreshes an entry's recency).
    """
    key = (name, scale)
    cached = lru_get(_KERNEL_CACHE, key)
    if cached is None:
        program = build_kernel(name, scale=scale)
        trace = run_program(program)
        cached = (program, trace)
        lru_put(_KERNEL_CACHE, key, cached, KERNEL_TRACE_CACHE_MAX_ENTRIES)
    return cached


def kernel_trace_cache_size() -> int:
    """Number of (kernel, scale) traces currently cached."""
    return len(_KERNEL_CACHE)


def clear_kernel_trace_cache() -> None:
    """Drop all cached functional traces.

    Part of the public :mod:`repro.experiments` API: long-lived services
    embedding the campaign machinery call this between campaigns to
    release the (large) dynamic instruction streams.
    """
    _KERNEL_CACHE.clear()


def _simulate_kernel_task(
    args: Tuple[str, float, Tuple[str, ...]]
) -> Tuple[str, FunctionalTrace, Dict[str, "SimulationResult"]]:
    """Worker-side job: one kernel under every policy (module-level so it
    pickles for :class:`ProcessPoolExecutor`).

    The functional trace is shared by every policy's result, so it is
    detached before pickling and shipped exactly once — otherwise each
    of the N per-policy results would serialise its own copy of the
    (large) dynamic instruction stream.  The parent re-attaches it.
    """
    name, scale, policy_values = args
    program, trace = cached_kernel_trace(name, scale)
    per_policy = {
        value: simulate_spec(
            SimulationSpec(kernel=name, scale=scale, policy=value),
            program=program,
            trace=trace,
        )
        for value in policy_values
    }
    for result in per_policy.values():
        result.trace = None  # re-attached by the parent
    return name, trace, per_policy


@dataclass
class KernelRunSet:
    """All simulation results for one experiment campaign.

    ``results[benchmark][policy_value]`` is a
    :class:`~repro.simulation.SimulationResult`.
    """

    scale: float
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def benchmarks(self) -> List[str]:
        return sorted(self.results)

    def result(self, benchmark: str, policy: EccPolicyKind) -> SimulationResult:
        return self.results[benchmark][policy.value]

    def baseline(self, benchmark: str) -> SimulationResult:
        return self.results[benchmark][EccPolicyKind.NO_ECC.value]


class ExperimentRunner:
    """Builds and caches the kernel × policy result matrix.

    ``max_workers`` opts into the process-pool fan-out: each worker
    simulates whole kernels (functional trace once, then every policy),
    and the parent reassembles results in ``kernels`` order so output is
    deterministic.  ``max_workers=0`` picks :func:`os.cpu_count`.  The
    default (``None``) stays serial, which is the right call for a single
    small kernel set or when the caller is already parallel.

    ``store`` (a :class:`~repro.store.ResultStore`) opts into the
    cross-process result cache: timing results found under their spec
    hash are reconstructed instead of re-simulated (the functional trace
    is re-attached from the kernel-trace cache), and fresh results are
    written back.  ``run_all(force=True)`` bypasses both the in-memory
    run set *and* store reads — results are recomputed and the store is
    refreshed, which is how a stored campaign is validated.
    """

    def __init__(
        self,
        *,
        scale: float = 1.0,
        kernels: Optional[Iterable[str]] = None,
        policies: Iterable[EccPolicyKind] = FIGURE8_POLICIES,
        max_workers: Optional[int] = None,
        store=None,
    ) -> None:
        self.scale = scale
        self.kernels = list(kernels) if kernels is not None else list(KERNEL_NAMES)
        self.policies = list(policies)
        if max_workers == 0:
            max_workers = os.cpu_count() or 1
        self.max_workers = max_workers
        self.store = store
        self._run_set: Optional[KernelRunSet] = None

    def run_all(self, *, force: bool = False) -> KernelRunSet:
        """Simulate every kernel under every policy (cached).

        ``force=True`` recomputes everything: the memoised run set is
        discarded and, when a store is attached, stored results are
        ignored on read (but refreshed on write).
        """
        if self._run_set is not None and not force:
            return self._run_set
        workers = self.max_workers or 1
        if workers > 1 and len(self.kernels) > 1:
            run_set = self._run_parallel(
                min(workers, len(self.kernels)), read_store=not force
            )
        else:
            run_set = self._run_serial(read_store=not force)
        self._run_set = run_set
        return run_set

    # ------------------------------------------------------------------ #
    def _simulate_stored(self, spec, program, trace, *, read_store: bool):
        """One spec through the store-aware path (used by the serial run)."""
        if self.store is None:
            return simulate_spec(spec, program=program, trace=trace)
        if read_store:
            return simulate_spec(spec, program=program, trace=trace, store=self.store)
        from repro.store import store_timing_result

        result = simulate_spec(spec, program=program, trace=trace)
        store_timing_result(self.store, spec, result)
        return result

    def _run_serial(self, *, read_store: bool = True) -> KernelRunSet:
        run_set = KernelRunSet(scale=self.scale)
        for name in self.kernels:
            program, trace = cached_kernel_trace(name, self.scale)
            per_policy: Dict[str, SimulationResult] = {}
            for policy in self.policies:
                spec = SimulationSpec(kernel=name, scale=self.scale, policy=policy)
                per_policy[policy.value] = self._simulate_stored(
                    spec, program, trace, read_store=read_store
                )
            run_set.results[name] = per_policy
        return run_set

    def _run_parallel(self, workers: int, *, read_store: bool = True) -> KernelRunSet:
        policy_values = tuple(policy.value for policy in self.policies)
        run_set = KernelRunSet(scale=self.scale)
        # With a store attached, stored (kernel, policy) results are
        # reconstructed in the parent at per-policy granularity; workers
        # (which do not share the parent's SQLite connection) only
        # compute the genuinely missing policies of each kernel.
        restored: Dict[str, Dict[str, SimulationResult]] = {}
        missing: Dict[str, Tuple[str, ...]] = {}
        if self.store is not None and read_store:
            for name in self.kernels:
                row, absent = self._restore_kernel_row(name, policy_values)
                restored[name] = row
                if absent:
                    missing[name] = absent
        else:
            missing = {name: policy_values for name in self.kernels}
            restored = {name: {} for name in self.kernels}
        tasks = [(name, self.scale, missing[name]) for name in self.kernels if name in missing]
        if tasks:
            with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as executor:
                # ``map`` preserves submission order, so results land in
                # ``self.kernels`` order no matter which worker finishes
                # first.
                for name, trace, per_policy in executor.map(
                    _simulate_kernel_task, tasks
                ):
                    for result in per_policy.values():
                        result.trace = trace
                        if self.store is not None:
                            from repro.store import store_timing_result

                            store_timing_result(self.store, result.spec, result)
                    restored[name].update(per_policy)
        for name in self.kernels:
            run_set.results[name] = {
                value: restored[name][value] for value in policy_values
            }
        return run_set

    def _restore_kernel_row(self, name: str, policy_values):
        """Rebuild whatever the store holds of one kernel's policy row.

        Returns ``(restored, missing)``: the per-policy results that
        could be reconstructed (functional trace re-attached) and the
        policy values that still need simulating.
        """
        from repro.store import result_from_payload, spec_hash

        payloads = {}
        specs = {}
        for value in policy_values:
            spec = SimulationSpec(kernel=name, scale=self.scale, policy=value)
            payload = self.store.get(spec_hash(spec))
            if payload is not None:
                specs[value] = spec
                payloads[value] = payload
        missing = tuple(value for value in policy_values if value not in payloads)
        if not payloads:
            return {}, missing
        _, trace = cached_kernel_trace(name, self.scale)
        restored = {
            value: result_from_payload(specs[value], payloads[value], trace=trace)
            for value in payloads
        }
        return restored, missing
