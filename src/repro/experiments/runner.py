"""Shared experiment infrastructure.

Most experiments need the same expensive ingredient: every kernel
simulated under every Figure 8 policy.  :class:`ExperimentRunner` builds
that result set once (re-using one functional trace per kernel, since the
policies do not change architectural behaviour) and hands it to the
individual experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.policies import EccPolicyKind
from repro.functional.simulator import run_program
from repro.simulation import SimulationResult, simulate_program
from repro.workloads import KERNEL_NAMES, build_kernel

FIGURE8_POLICIES = (
    EccPolicyKind.NO_ECC,
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
)


@dataclass
class KernelRunSet:
    """All simulation results for one experiment campaign.

    ``results[benchmark][policy_value]`` is a
    :class:`~repro.simulation.SimulationResult`.
    """

    scale: float
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def benchmarks(self) -> List[str]:
        return sorted(self.results)

    def result(self, benchmark: str, policy: EccPolicyKind) -> SimulationResult:
        return self.results[benchmark][policy.value]

    def baseline(self, benchmark: str) -> SimulationResult:
        return self.results[benchmark][EccPolicyKind.NO_ECC.value]


class ExperimentRunner:
    """Builds and caches the kernel × policy result matrix."""

    def __init__(
        self,
        *,
        scale: float = 1.0,
        kernels: Optional[Iterable[str]] = None,
        policies: Iterable[EccPolicyKind] = FIGURE8_POLICIES,
    ) -> None:
        self.scale = scale
        self.kernels = list(kernels) if kernels is not None else list(KERNEL_NAMES)
        self.policies = list(policies)
        self._run_set: Optional[KernelRunSet] = None

    def run_all(self, *, force: bool = False) -> KernelRunSet:
        """Simulate every kernel under every policy (cached)."""
        if self._run_set is not None and not force:
            return self._run_set
        run_set = KernelRunSet(scale=self.scale)
        for name in self.kernels:
            program = build_kernel(name, scale=self.scale)
            trace = run_program(program)
            per_policy: Dict[str, SimulationResult] = {}
            for policy in self.policies:
                per_policy[policy.value] = simulate_program(
                    program, policy=policy, trace=trace
                )
            run_set.results[name] = per_policy
        self._run_set = run_set
        return run_set
