"""Figures 2-5 and 7: pipeline chronograms of the paper's micro-sequences.

The paper explains each scheme with a two/three-instruction example:

* Figure 2 — baseline (no ECC): ``r3 = load(r1+r2); r5 = r3 + r4``; the
  dependent add stalls one extra cycle in Execute.
* Figure 3 — Extra Cache Cycle: the same pair; the add stalls two cycles.
* Figure 4 — Extra Stage: the same pair; two stall cycles, but the ECC
  stage is pipelined.
* Figure 5 — Extra Stage without a data dependence: no stall at all.
* Figure 7a — LAEC with a successful look-ahead: back to one stall.
* Figure 7b — LAEC blocked by a data hazard (the previous instruction
  produces ``r1``): behaves like Extra Stage.

Each micro-sequence is wrapped in a two-iteration loop and the *second*
iteration is rendered, so the instruction and data lines are warm and
the chronogram shows the steady-state behaviour the paper's figures
depict (rather than cold-start miss latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.policies import EccPolicyKind
from repro.isa.assembler import assemble
from repro.pipeline.chronogram import Chronogram
from repro.pipeline.stages import Stage
from repro.simulation import simulate_program

#: Loop harness: {body} is substituted with the figure's instructions.
#: ``r4`` holds the array base so Figure 7b's address-producing add
#: regenerates a valid address each iteration.
_TEMPLATE = """
.data
values:
    .word 11, 22, 33, 44, 55, 66, 77, 88

.text
main:
    set values, r1
    set 8, r2
    set values, r4
    set 0, r6
    set 2, r20
loop:
{body}
    subcc r20, 1, r20
    bg loop
    halt
"""

_DEPENDENT_PAIR = """    ld [r1+r2], r3              ; r3 = load(r1+r2)
    add r3, r4, r5              ; r5 = r3 + r4     (dependent)"""

_INDEPENDENT_PAIR = """    ld [r1+r2], r3              ; r3 = load(r1+r2)
    add r6, r4, r5              ; r5 = r6 + r4     (independent)"""

_HAZARD_TRIPLE = """    add r4, r6, r1              ; r1 = r4 + r6     (produces the address)
    ld [r1+r2], r3              ; r3 = load(r1+r2) (cannot be anticipated)
    add r3, r4, r5              ; r5 = r3 + r4     (dependent)"""

_PREAMBLE_LENGTH = 5  # set x5
_LOOP_OVERHEAD = 2    # subcc + bg per iteration


def _second_iteration_window(body_length: int) -> Tuple[int, int]:
    """Dynamic-index window of the second iteration's body instructions."""
    first = _PREAMBLE_LENGTH + body_length + _LOOP_OVERHEAD
    return first, first + body_length - 1


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure: instruction sequence + policy."""

    figure: str
    description: str
    body: str
    body_length: int
    policy: EccPolicyKind
    #: Execute-stage occupancy (cycles) the paper's figure shows for the
    #: dependent consumer (the last shown instruction).
    expected_consumer_execute_cycles: int


FIGURES: Dict[str, FigureSpec] = {
    spec.figure: spec
    for spec in [
        FigureSpec(
            "figure2",
            "data-dependency stall on the baseline NGMP (no ECC)",
            _DEPENDENT_PAIR,
            2,
            EccPolicyKind.NO_ECC,
            2,
        ),
        FigureSpec(
            "figure3",
            "data-dependency stall with Extra Cache Cycle",
            _DEPENDENT_PAIR,
            2,
            EccPolicyKind.EXTRA_CYCLE,
            3,
        ),
        FigureSpec(
            "figure4",
            "data-dependency stall with Extra Stage",
            _DEPENDENT_PAIR,
            2,
            EccPolicyKind.EXTRA_STAGE,
            3,
        ),
        FigureSpec(
            "figure5",
            "no data dependency with Extra Stage (no stall)",
            _INDEPENDENT_PAIR,
            2,
            EccPolicyKind.EXTRA_STAGE,
            1,
        ),
        FigureSpec(
            "figure7a",
            "LAEC with a successful look-ahead",
            _DEPENDENT_PAIR,
            2,
            EccPolicyKind.LAEC,
            2,
        ),
        FigureSpec(
            "figure7b",
            "LAEC blocked by a data hazard (normal execution)",
            _HAZARD_TRIPLE,
            3,
            EccPolicyKind.LAEC,
            3,
        ),
    ]
}


@dataclass
class ChronogramResult:
    """Chronogram for one figure plus the stall count of the consumer."""

    spec: FigureSpec
    chronogram: Chronogram
    consumer_execute_cycles: int

    @property
    def matches_paper(self) -> bool:
        return (
            self.consumer_execute_cycles
            == self.spec.expected_consumer_execute_cycles
        )


def run_figure(figure: str) -> ChronogramResult:
    """Simulate one figure's micro-sequence and return its chronogram."""
    spec = FIGURES[figure]
    source = _TEMPLATE.format(body=spec.body)
    program = assemble(source, name=figure)
    window = _second_iteration_window(spec.body_length)
    result = simulate_program(
        program, policy=spec.policy, chronogram_window=window[1] + 1
    )
    shown = result.chronogram.window(*window)
    consumer_entry = shown.entries[-1]
    return ChronogramResult(
        spec=spec,
        chronogram=shown,
        consumer_execute_cycles=consumer_entry.cycles_in(Stage.EXECUTE),
    )


def run(figures: Optional[List[str]] = None) -> Dict[str, ChronogramResult]:
    """Run all (or the selected) figures."""
    names = figures if figures is not None else sorted(FIGURES)
    return {name: run_figure(name) for name in names}


def render(results: Dict[str, ChronogramResult]) -> str:
    """Render every chronogram with its figure caption."""
    blocks: List[str] = []
    for name in sorted(results):
        result = results[name]
        blocks.append(
            f"{name}: {result.spec.description} [policy={result.spec.policy.value}]"
        )
        blocks.append(result.chronogram.render())
        verdict = "matches" if result.matches_paper else "DIFFERS FROM"
        blocks.append(
            f"(consumer occupies Execute for {result.consumer_execute_cycles} "
            f"cycle(s); {verdict} the paper's figure, which shows "
            f"{result.spec.expected_consumer_execute_cycles})"
        )
        blocks.append("")
    return "\n".join(blocks)
