"""Ablation A2: sensitivity of the Figure 8 result to workload statistics.

Using the synthetic stream generator, this ablation sweeps the three
Table II quantities one at a time (fraction of loads, fraction of
dependent loads, DL1 hit rate) plus the LAEC-specific "address produced
by the previous instruction" fraction, and reports the execution-time
increase of each scheme at every sweep point.  It shows *why* the paper's
averages come out where they do:

* Extra Cycle scales with loads x hit rate (every load hit pays);
* Extra Stage scales with loads x hit rate x dependent fraction;
* LAEC scales with the same product further multiplied by the fraction
  of loads whose address comes from the immediately preceding
  instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.analysis.reporting import Table
from repro.core.policies import EccPolicyKind
from repro.simulation import SimulationResult
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.timing import TimingPipeline
from repro.core.policies import make_policy
from repro.workloads.synthetic import SyntheticStreamConfig, SyntheticWorkloadGenerator

SWEEP_POLICIES = (
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
)


@dataclass(frozen=True)
class SweepPoint:
    """One synthetic configuration and the measured policy overheads."""

    parameter: str
    value: float
    increase: Dict[str, float]


def _time_stream(trace, policy_kind: EccPolicyKind, core_config: CoreConfig) -> int:
    policy = make_policy(policy_kind)
    config = core_config.with_policy(policy)
    hierarchy = MemoryHierarchy(
        config.resolved_hierarchy_config(),
        write_buffer_entries=config.pipeline.write_buffer_entries,
    )
    pipeline = TimingPipeline(policy, hierarchy, config.pipeline)
    return pipeline.run(trace).cycles


def sweep(
    parameter: str,
    values: Sequence[float],
    *,
    base: SyntheticStreamConfig | None = None,
    instructions: int = 12_000,
) -> List[SweepPoint]:
    """Sweep one synthetic-stream parameter and measure the overheads."""
    base = base or SyntheticStreamConfig(instructions=instructions)
    core_config = CoreConfig()
    points: List[SweepPoint] = []
    for value in values:
        config = replace(base, **{parameter: value})
        trace = SyntheticWorkloadGenerator(config).generate(
            name=f"synthetic-{parameter}-{value}"
        )
        baseline = _time_stream(trace, EccPolicyKind.NO_ECC, core_config)
        increases: Dict[str, float] = {}
        for policy in SWEEP_POLICIES:
            cycles = _time_stream(trace, policy, core_config)
            increases[policy.value] = cycles / baseline - 1.0
        points.append(SweepPoint(parameter=parameter, value=value, increase=increases))
    return points


def run(*, instructions: int = 12_000) -> Dict[str, List[SweepPoint]]:
    """Run the three default sweeps used by the benchmark harness."""
    return {
        "load_fraction": sweep(
            "load_fraction", (0.15, 0.25, 0.35), instructions=instructions
        ),
        "dependent_load_fraction": sweep(
            "dependent_load_fraction", (0.2, 0.6, 0.9), instructions=instructions
        ),
        "address_from_previous_fraction": sweep(
            "address_from_previous_fraction", (0.0, 0.3, 0.8), instructions=instructions
        ),
    }


def render(sweeps: Dict[str, List[SweepPoint]]) -> str:
    blocks: List[str] = []
    for parameter, points in sweeps.items():
        table = Table(
            title=f"Ablation A2: execution-time increase vs {parameter}",
            columns=["value", "extra-cycle %", "extra-stage %", "laec %"],
        )
        for point in points:
            table.add_row(
                value=point.value,
                **{
                    "extra-cycle %": point.increase[EccPolicyKind.EXTRA_CYCLE.value] * 100,
                    "extra-stage %": point.increase[EccPolicyKind.EXTRA_STAGE.value] * 100,
                    "laec %": point.increase[EccPolicyKind.LAEC.value] * 100,
                },
            )
        blocks.append(table.render(float_format="{:.2f}"))
        blocks.append("")
    return "\n".join(blocks)
