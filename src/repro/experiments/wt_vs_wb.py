"""Write-through versus write-back WCET study (paper §I / §II-A).

The paper motivates write-back DL1 caches — and hence the need for DL1
error *correction* — by the observation that a write-through DL1 pushes
every store onto the shared bus, which inflates WCET estimates on a
multicore (up to 6x for bus contention alone according to reference [9]).
This experiment reproduces the shape of that argument on our SoC model:
for a store-intensive kernel it reports execution-time bounds in
isolation and under worst-case bus contention for

* a write-through DL1 with parity (the LEON3/LEON4 configuration),
* a write-back DL1 protected by LAEC, and
* the ideal unprotected write-back DL1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import Table
from repro.analysis.wcet import WcetAnalysis, WcetBound
from repro.workloads import build_kernel

#: Store-intensive kernels used for the study (outputs written per sample).
DEFAULT_KERNELS = ("iirflt", "puwmod", "a2time")


@dataclass
class WtVsWbResult:
    """Bounds per kernel and per DL1 configuration."""

    bounds: Dict[str, Dict[str, WcetBound]]

    def wcet_ratio(self, kernel: str, policy: str, baseline: str = "wb-no-ecc") -> float:
        """WCET of ``policy`` relative to ``baseline`` for one kernel."""
        per_policy = self.bounds[kernel]
        return (
            per_policy[policy].wcet_estimate_cycles
            / per_policy[baseline].wcet_estimate_cycles
        )

    def average_wt_inflation(self) -> float:
        """Mean WT-vs-WB(LAEC) WCET ratio across the studied kernels."""
        kernels = list(self.bounds)
        if not kernels:
            return 0.0
        return sum(
            self.wcet_ratio(kernel, "wt-parity", "wb-laec") for kernel in kernels
        ) / len(kernels)


def run(
    *,
    kernels: Optional[List[str]] = None,
    scale: float = 0.5,
    contenders: int = 3,
    safety_margin: float = 1.2,
) -> WtVsWbResult:
    """Compute WCET bounds for the selected kernels and configurations."""
    analysis = WcetAnalysis(safety_margin=safety_margin, contenders=contenders)
    bounds: Dict[str, Dict[str, WcetBound]] = {}
    for name in kernels or list(DEFAULT_KERNELS):
        program = build_kernel(name, scale=scale)
        bounds[name] = analysis.write_policy_study(program)
    return WtVsWbResult(bounds=bounds)


def render(result: WtVsWbResult) -> str:
    table = Table(
        title=(
            "WT+parity vs WB DL1: observed cycles and WCET estimates "
            "(3 contending cores, worst-case round-robin bus)"
        ),
        columns=[
            "kernel",
            "configuration",
            "isolation cycles",
            "contention cycles",
            "WCET estimate",
            "WCET vs WB-LAEC",
        ],
    )
    for kernel, per_policy in result.bounds.items():
        for policy, bound in per_policy.items():
            table.add_row(
                kernel=kernel,
                configuration=policy,
                **{
                    "isolation cycles": bound.observed_isolation_cycles,
                    "contention cycles": bound.observed_contention_cycles,
                    "WCET estimate": bound.wcet_estimate_cycles,
                    "WCET vs WB-LAEC": result.wcet_ratio(kernel, policy, "wb-laec"),
                },
            )
    note = (
        f"Average WT/WB(LAEC) WCET inflation: {result.average_wt_inflation():.2f}x "
        "(the paper's motivation cites up to 6x for bus contention alone)."
    )
    return table.render(float_format="{:.2f}") + "\n" + note
