"""Energy/power experiment (paper §IV-A, last paragraph).

Two claims are checked quantitatively:

* the dynamic-power overhead of LAEC's extra hardware (two register-file
  read ports + one 32-bit adder per anticipated load) is below 1 %;
* leakage energy grows in proportion to execution time, so the leakage
  penalty of each scheme mirrors its Figure 8 slowdown (≈17 % for Extra
  Cycle, ≈10 % for Extra Stage, <4 % for LAEC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.energy import EnergyModel, EnergyReport, estimate_energy
from repro.analysis.reporting import Table
from repro.core.policies import EccPolicyKind
from repro.experiments.runner import ExperimentRunner, KernelRunSet


@dataclass
class EnergyStudyRow:
    """Average relative deltas of one policy versus the no-ECC baseline."""

    policy: str
    dynamic_increase: float
    leakage_increase: float
    execution_time_increase: float


def run(
    *,
    runner: Optional[ExperimentRunner] = None,
    run_set: Optional[KernelRunSet] = None,
    model: Optional[EnergyModel] = None,
) -> List[EnergyStudyRow]:
    """Estimate per-policy energy deltas averaged over all kernels."""
    if run_set is None:
        runner = runner or ExperimentRunner()
        run_set = runner.run_all()
    model = model or EnergyModel()
    policies = [
        EccPolicyKind.EXTRA_CYCLE,
        EccPolicyKind.EXTRA_STAGE,
        EccPolicyKind.LAEC,
    ]
    accumulators: Dict[str, List[float]] = {
        policy.value: [0.0, 0.0, 0.0] for policy in policies
    }
    benchmarks = run_set.benchmarks()
    for benchmark in benchmarks:
        baseline_result = run_set.baseline(benchmark)
        baseline_energy = estimate_energy(baseline_result, model=model)
        for policy in policies:
            result = run_set.result(benchmark, policy)
            energy = estimate_energy(result, model=model)
            deltas = energy.relative_to(baseline_energy)
            accumulator = accumulators[policy.value]
            accumulator[0] += deltas["dynamic"]
            accumulator[1] += deltas["leakage"]
            accumulator[2] += result.execution_time_increase_over(baseline_result)
    rows: List[EnergyStudyRow] = []
    count = len(benchmarks) or 1
    for policy in policies:
        accumulator = accumulators[policy.value]
        rows.append(
            EnergyStudyRow(
                policy=policy.value,
                dynamic_increase=accumulator[0] / count,
                leakage_increase=accumulator[1] / count,
                execution_time_increase=accumulator[2] / count,
            )
        )
    return rows


def render(rows: List[EnergyStudyRow]) -> str:
    table = Table(
        title="Energy study (§IV-A): average increase over the no-ECC baseline",
        columns=[
            "policy",
            "dynamic energy %",
            "leakage energy %",
            "execution time %",
        ],
    )
    for row in rows:
        table.add_row(
            policy=row.policy,
            **{
                "dynamic energy %": row.dynamic_increase * 100,
                "leakage energy %": row.leakage_increase * 100,
                "execution time %": row.execution_time_increase * 100,
            },
        )
    note = (
        "Leakage energy tracks execution time (same percentages), and the LAEC\n"
        "dynamic overhead stays small, as argued in the paper."
    )
    return table.render(float_format="{:.2f}") + "\n" + note
