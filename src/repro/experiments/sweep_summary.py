"""Multi-dimensional fault-sweep summary (DL1 vs L2, isolation vs contention).

The paper's reliability argument covers the whole protected hierarchy
under real multicore operating conditions, not just the DL1 of an
isolated core: SECDED makes dirty data safe wherever it lives, and the
guarantee must hold while the shared bus is loaded.  This experiment
runs one declarative sweep campaign over

* **fault target** — DL1 vs L2 array flips,
* **interference scenario** — isolation vs the WCET study's worst-case
  round-robin contention (``laec-worst``),

for every Figure-8 policy, and renders the per-dimension marginals next
to the per-stratum table.  The acceptance property it demonstrates: the
SECDED deployments show zero SDC on *both* arrays in *both* scenarios,
while the unprotected baseline's L2 — bare words, no code — silently
corrupts data exactly like its DL1 does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.reporting import Table
from repro.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.campaign.stats import wilson_interval


def run(
    *,
    kernels: Tuple[str, ...] = ("canrdr", "matrix"),
    policies: Tuple[str, ...] = ("no-ecc", "extra-cycle", "extra-stage", "laec"),
    targets: Tuple[str, ...] = ("dl1", "l2"),
    scenarios: Tuple[str, ...] = ("isolation", "laec-worst"),
    scale: float = 0.1,
    trials: int = 12,
    batch: int = 6,
    seed: int = 2019,
    workers: Optional[int] = None,
    store=None,
    resume: bool = False,
) -> CampaignResult:
    """Run the sweep campaign behind the ``sweep_summary`` artefact."""
    config = CampaignConfig(
        kernels=kernels,
        policies=policies,
        scale=scale,
        trials=trials,
        batch=batch,
        seed=seed,
        workers=workers,
        targets=targets,
        scenarios=scenarios,
    )
    return run_campaign(config, store=store, resume=resume)


def _marginal_table(
    title: str,
    dimension_label: str,
    totals,
    *,
    policies,
    values,
) -> Table:
    table = Table(
        title=title,
        columns=[
            "policy",
            dimension_label,
            "trials",
            "corrected %",
            "detected %",
            "SDC %",
            "SDC 95% CI",
        ],
    )
    for policy in policies:
        for value in values:
            bucket = totals.get((value, policy))
            if bucket is None:
                continue
            trials = bucket["trials"]
            low, high = wilson_interval(bucket["sdc"], trials)
            table.add_row(
                policy=policy,
                **{
                    dimension_label: value,
                    "trials": trials,
                    "corrected %": 100.0 * bucket["corrected"] / trials
                    if trials
                    else 0.0,
                    "detected %": 100.0 * bucket["detected"] / trials
                    if trials
                    else 0.0,
                    "SDC %": 100.0 * bucket["sdc"] / trials if trials else 0.0,
                    "SDC 95% CI": f"[{100.0 * low:.1f}, {100.0 * high:.1f}]",
                },
            )
    return table


def render(result: CampaignResult) -> str:
    """Per-stratum table plus the per-target and per-scenario marginals."""
    config = result.config
    per_target = _marginal_table(
        "DL1 vs L2 vulnerability per Figure-8 policy",
        "target",
        result.target_totals(),
        policies=config.policies,
        values=config.targets,
    )
    per_scenario = _marginal_table(
        "Isolation vs bus-contention rates per Figure-8 policy",
        "scenario",
        result.scenario_totals(),
        policies=config.policies,
        values=config.scenarios,
    )
    note = (
        "Marginals sum each policy's strata over the other sweep dimensions.\n"
        "SECDED deployments must show zero SDC on both arrays and in both\n"
        "scenarios (every observed flip of live data is corrected); the\n"
        "unprotected baseline's L2 holds bare words, so its flips silently\n"
        "corrupt data exactly like its DL1 flips do.  Interference changes\n"
        "when faults land relative to bus stalls, never whether SECDED\n"
        "corrects them."
    )
    return (
        result.render()
        + "\n\n"
        + per_target.render(float_format="{:.1f}")
        + "\n\n"
        + per_scenario.render(float_format="{:.1f}")
        + "\n"
        + note
    )
