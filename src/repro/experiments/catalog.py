"""The registered experiment catalogue.

One :class:`~repro.experiments.base.Experiment` per paper artefact,
wrapping the corresponding driver module with the exact parameters the
benchmark harness uses — so ``python -m repro --run <name>`` regenerates
``benchmarks/output/<artifact>.txt`` byte-identically.
"""

from __future__ import annotations

from repro.experiments import (
    ablation_hazards,
    ablation_sensitivity,
    chronograms,
    energy_report,
    fault_campaign,
    figure8,
    sweep_summary,
    table1,
    table2,
    wt_vs_wb,
)
from repro.experiments.base import Experiment, ExperimentContext, register


@register
class Table1Experiment(Experiment):
    name = "table1"
    description = "Table I: commercial processors and their L1 protection"
    artifact = "table1"

    def build(self, context: ExperimentContext):
        return table1.run()

    def render(self, result) -> str:
        return table1.render(result)


@register
class Table2Experiment(Experiment):
    name = "table2"
    description = "Table II: per-benchmark load statistics (measured vs paper)"
    artifact = "table2"
    uses_run_set = True

    def build(self, context: ExperimentContext):
        return table2.run(run_set=context.run_set())

    def render(self, result) -> str:
        return table2.render(result)


@register
class Figure8Experiment(Experiment):
    name = "figure8"
    description = "Figure 8: execution-time increase of each ECC scheme"
    artifact = "figure8"
    uses_run_set = True

    def build(self, context: ExperimentContext):
        return figure8.run(run_set=context.run_set())

    def render(self, result) -> str:
        return figure8.render(result)


@register
class ChronogramsExperiment(Experiment):
    name = "chronograms"
    description = "Figures 2-5 and 7: pipeline chronograms of the micro-sequences"
    artifact = "figures_2_to_7_chronograms"

    def build(self, context: ExperimentContext):
        return chronograms.run()

    def render(self, result) -> str:
        return chronograms.render(result)


@register
class EnergyReportExperiment(Experiment):
    name = "energy_report"
    description = "§IV-A energy study: dynamic/leakage increase per policy"
    artifact = "energy_report"
    uses_run_set = True

    def build(self, context: ExperimentContext):
        return energy_report.run(run_set=context.run_set())

    def render(self, result) -> str:
        return energy_report.render(result)


@register
class WtVsWbExperiment(Experiment):
    name = "wt_vs_wb"
    description = "§I/§II-A: WT+parity vs WB WCET bounds under bus contention"
    artifact = "wt_vs_wb_wcet"

    #: Harness parameters (store-intensive kernels, reduced scale).
    kernels = ("iirflt", "puwmod", "a2time")
    scale = 0.3

    def build(self, context: ExperimentContext):
        return wt_vs_wb.run(kernels=list(self.kernels), scale=self.scale)

    def render(self, result) -> str:
        return wt_vs_wb.render(result)


@register
class AblationHazardsExperiment(Experiment):
    name = "ablation_hazards"
    description = "Ablation A1: why LAEC anticipation is blocked, per benchmark"
    artifact = "ablation_hazards"
    uses_run_set = True

    def build(self, context: ExperimentContext):
        return ablation_hazards.run(run_set=context.run_set())

    def render(self, result) -> str:
        return ablation_hazards.render(result)


@register
class AblationSensitivityExperiment(Experiment):
    name = "ablation_sensitivity"
    description = "Ablation A2: sensitivity of Figure 8 to Table II statistics"
    artifact = "ablation_sensitivity"

    instructions = 8000

    def build(self, context: ExperimentContext):
        return ablation_sensitivity.run(instructions=self.instructions)

    def render(self, result) -> str:
        return ablation_sensitivity.render(result)


@register
class FaultCampaignExperiment(Experiment):
    name = "fault_campaign"
    description = "Ablation A3: fault-injection campaign on the ECC codecs"
    artifact = "fault_campaign"

    trials_per_point = 3000
    default_seed = 2019

    def build(self, context: ExperimentContext):
        seed = context.seed if context.seed is not None else self.default_seed
        return fault_campaign.run(trials_per_point=self.trials_per_point, seed=seed)

    def render(self, result) -> str:
        return fault_campaign.render(result)


@register
class CampaignSummaryExperiment(Experiment):
    name = "campaign_summary"
    description = (
        "Architectural fault-injection campaign vs the analytical "
        "reliability model"
    )
    artifact = "campaign_summary"

    #: Harness parameters: two kernels with opposite DL1 behaviour (a
    #: streaming writer and a load-after-store reuser) keep the campaign
    #: fast while exercising both SDC paths.
    kernels = ("canrdr", "matrix")
    scale = 0.1
    trials = 24
    batch = 8
    default_seed = 2019

    def build(self, context: ExperimentContext):
        from repro.campaign import CampaignConfig, run_campaign

        seed = context.seed if context.seed is not None else self.default_seed
        config = CampaignConfig(
            kernels=self.kernels,
            scale=self.scale,
            trials=self.trials,
            batch=self.batch,
            seed=seed,
            workers=context.workers,
        )
        resume = context.store is not None and not context.force
        return run_campaign(config, store=context.store, resume=resume)

    def render(self, result) -> str:
        from repro.analysis.reporting import Table
        from repro.campaign import analytical_reference
        from repro.campaign.stats import wilson_interval

        text = result.render()
        totals = result.policy_totals()
        reference = analytical_reference(result.config.policies)
        table = Table(
            title="Per-policy architectural rates vs analytical prediction",
            columns=[
                "policy",
                "trials",
                "corrected %",
                "SDC %",
                "SDC 95% CI",
                "codec SDC bound %",
                "model unsafe/1e9h",
            ],
        )
        for policy in result.config.policies:
            bucket = totals[policy]
            trials = bucket["trials"]
            low, high = wilson_interval(bucket["sdc"], trials)
            analytic = reference[policy]
            table.add_row(
                policy=policy,
                trials=trials,
                **{
                    "corrected %": 100.0 * bucket["corrected"] / trials if trials else 0.0,
                    "SDC %": 100.0 * bucket["sdc"] / trials if trials else 0.0,
                    "SDC 95% CI": f"[{100.0 * low:.1f}, {100.0 * high:.1f}]",
                    "codec SDC bound %": 100.0 * analytic["codec_sdc_bound"],
                    "model unsafe/1e9h": f"{analytic['array_failures_per_1e9h']:.3g}",
                },
            )
        note = (
            "The codec bound is the code-level SDC probability of a single flip\n"
            "(architectural masking only lowers the observed rate); the model\n"
            "column is the ReliabilityModel's unsafe array failures per 1e9 h.\n"
            "SECDED policies must sit at 0% SDC with every sampled single flip\n"
            "corrected; the unprotected write-back DL1 must not."
        )
        return text + "\n\n" + table.render(float_format="{:.1f}") + "\n" + note


@register
class SweepSummaryExperiment(Experiment):
    name = "sweep_summary"
    description = (
        "Multi-dimensional fault sweep: DL1 vs L2 targets x isolation vs "
        "bus contention, per Figure-8 policy"
    )
    artifact = "sweep_summary"

    #: Harness parameters: the campaign_summary kernel pair swept over
    #: both fault targets and both interference extremes.  Small per-
    #: stratum budgets keep the 2x4x2x2 grid fast while leaving every
    #: marginal well-populated.
    kernels = ("canrdr", "matrix")
    targets = ("dl1", "l2")
    scenarios = ("isolation", "laec-worst")
    scale = 0.1
    trials = 12
    batch = 6
    default_seed = 2019

    def build(self, context: ExperimentContext):
        seed = context.seed if context.seed is not None else self.default_seed
        resume = context.store is not None and not context.force
        return sweep_summary.run(
            kernels=self.kernels,
            targets=self.targets,
            scenarios=self.scenarios,
            scale=self.scale,
            trials=self.trials,
            batch=self.batch,
            seed=seed,
            workers=context.workers,
            store=context.store,
            resume=resume,
        )

    def render(self, result) -> str:
        return sweep_summary.render(result)
