"""Ablation A1: why does LAEC fail to anticipate a load?

Section IV-A of the paper notes that of the two conditions that can
block anticipation, data hazards dominate ("most of them are due to data
hazards": an instruction generates the address, the next instruction is
the load, and the following one or two consume the loaded value).  This
ablation measures the breakdown per benchmark using the look-ahead
unit's counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.reporting import Table
from repro.core.policies import EccPolicyKind
from repro.experiments.runner import ExperimentRunner, KernelRunSet


@dataclass(frozen=True)
class HazardBreakdownRow:
    """Per-benchmark anticipation statistics under LAEC."""

    benchmark: str
    loads: int
    take_rate: float
    blocked_data_hazard: int
    blocked_resource_hazard: int
    blocked_operands_late: int

    @property
    def blocked_total(self) -> int:
        return (
            self.blocked_data_hazard
            + self.blocked_resource_hazard
            + self.blocked_operands_late
        )

    @property
    def data_hazard_share(self) -> float:
        """Share of blocked anticipations caused by a data hazard."""
        blocked = self.blocked_total
        return self.blocked_data_hazard / blocked if blocked else 0.0


def run(
    *, runner: Optional[ExperimentRunner] = None, run_set: Optional[KernelRunSet] = None
) -> List[HazardBreakdownRow]:
    if run_set is None:
        runner = runner or ExperimentRunner()
        run_set = runner.run_all()
    rows: List[HazardBreakdownRow] = []
    for benchmark in run_set.benchmarks():
        stats = run_set.result(benchmark, EccPolicyKind.LAEC).stats.lookahead
        rows.append(
            HazardBreakdownRow(
                benchmark=benchmark,
                loads=stats.loads_seen,
                take_rate=stats.take_rate,
                blocked_data_hazard=stats.blocked_data_hazard,
                blocked_resource_hazard=stats.blocked_resource_hazard,
                blocked_operands_late=stats.blocked_operands_late,
            )
        )
    return rows


def data_hazard_dominates(rows: List[HazardBreakdownRow]) -> bool:
    """True when, summed over benchmarks, data hazards block more
    anticipations than resource hazards (the paper's observation)."""
    data = sum(r.blocked_data_hazard + r.blocked_operands_late for r in rows)
    resource = sum(r.blocked_resource_hazard for r in rows)
    return data >= resource


def render(rows: List[HazardBreakdownRow]) -> str:
    table = Table(
        title="Ablation A1: LAEC anticipation outcome per benchmark",
        columns=[
            "benchmark",
            "loads",
            "take rate %",
            "blocked: data hazard",
            "blocked: resource hazard",
            "blocked: operands late",
        ],
    )
    for row in rows:
        table.add_row(
            benchmark=row.benchmark,
            loads=row.loads,
            **{
                "take rate %": row.take_rate * 100,
                "blocked: data hazard": row.blocked_data_hazard,
                "blocked: resource hazard": row.blocked_resource_hazard,
                "blocked: operands late": row.blocked_operands_late,
            },
        )
    verdict = (
        "Data hazards dominate the blocked anticipations"
        if data_hazard_dominates(rows)
        else "Resource hazards dominate the blocked anticipations"
    )
    return table.render(float_format="{:.1f}") + f"\n{verdict} (paper: data hazards dominate)."
