"""Experiment drivers: one module per paper table/figure plus ablations.

Every experiment exposes a ``run(...)`` function returning structured
data plus a ``render(...)`` helper that turns it into the table/figure
text printed by the benchmark harness.  The mapping to the paper is:

==============================  =======================================
module                          paper artefact
==============================  =======================================
``table1``                      Table I (commercial processors survey)
``table2``                      Table II (per-benchmark load statistics)
``figure8``                     Figure 8 (execution-time increase)
``chronograms``                 Figures 2-5 and 7 (pipeline diagrams)
``energy_report``               §IV-A power/leakage discussion
``wt_vs_wb``                    §I/§II-A write-through WCET motivation
``ablation_hazards``            LAEC hazard breakdown (§IV-A discussion)
``ablation_sensitivity``        sensitivity of Figure 8 to Table II stats
``fault_campaign``              SECDED correction/detection guarantees
``campaign_summary``            architectural injection campaign vs the
                                analytical reliability model (wraps
                                :mod:`repro.campaign`; registered in
                                :mod:`repro.experiments.catalog`)
``sweep_summary``               multi-dimensional fault sweep (DL1 vs L2
                                targets × isolation vs bus contention)
                                with per-dimension marginals
==============================  =======================================

Each driver module exposes ``run(...)``/``render(...)``; the uniform
:class:`~repro.experiments.base.Experiment` wrappers in
:mod:`repro.experiments.catalog` register them all in one discoverable
registry, which is what ``python -m repro`` serves.
"""

from repro.experiments import (
    ablation_hazards,
    ablation_sensitivity,
    chronograms,
    energy_report,
    fault_campaign,
    figure8,
    sweep_summary,
    table1,
    table2,
    wt_vs_wb,
)
from repro.experiments.base import (
    DEFAULT_CAMPAIGN_SCALE,
    Experiment,
    ExperimentContext,
    ExperimentOutput,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
)
from repro.experiments.runner import (
    ExperimentRunner,
    KernelRunSet,
    clear_kernel_trace_cache,
)
from repro.experiments import catalog  # noqa: F401  (registers the experiments)

__all__ = [
    "DEFAULT_CAMPAIGN_SCALE",
    "Experiment",
    "ExperimentContext",
    "ExperimentOutput",
    "ExperimentRunner",
    "KernelRunSet",
    "ablation_hazards",
    "ablation_sensitivity",
    "all_experiments",
    "chronograms",
    "clear_kernel_trace_cache",
    "energy_report",
    "experiment_names",
    "fault_campaign",
    "figure8",
    "get_experiment",
    "register",
    "sweep_summary",
    "table1",
    "table2",
    "wt_vs_wb",
]
