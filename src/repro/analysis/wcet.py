"""Measurement-based WCET analysis helpers.

Critical real-time systems need execution-time *bounds*, not averages.
The paper's motivation (§I, §II-A) is that a write-through DL1 makes
those bounds much worse on a multicore because every store competes for
the shared bus.  This module wraps the SoC interference scenarios into
explicit bounds with the safety margins measurement-based timing
analysis typically applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.core.policies import EccPolicy, EccPolicyKind
from repro.isa.program import Program
from repro.soc.interference import InterferenceScenario
from repro.soc.ngmp import NgmpConfig, NgmpSoC, TaskPlacement


@dataclass(frozen=True)
class WcetBound:
    """An execution-time bound for one task/policy configuration."""

    policy: str
    observed_isolation_cycles: int
    observed_contention_cycles: int
    wcet_estimate_cycles: int

    @property
    def contention_inflation(self) -> float:
        """WCET estimate relative to the isolated observation."""
        if self.observed_isolation_cycles == 0:
            return 0.0
        return self.wcet_estimate_cycles / self.observed_isolation_cycles


class WcetAnalysis:
    """Derives WCET bounds for a program under different DL1 policies."""

    def __init__(
        self,
        *,
        soc: NgmpSoC | None = None,
        safety_margin: float = 1.2,
        contenders: int = 3,
    ) -> None:
        self.soc = soc or NgmpSoC(NgmpConfig())
        self.safety_margin = safety_margin
        self.contenders = contenders

    def bound_for(
        self, program: Program, policy: Union[str, EccPolicyKind, EccPolicy]
    ) -> WcetBound:
        """Observed isolation/contention times and the padded WCET estimate."""
        placement = TaskPlacement(program=program, policy=policy)
        isolation = self.soc.run_task(
            placement, scenario=InterferenceScenario("isolation", 0, "none")
        ).cycles
        contention = self.soc.run_task(
            placement,
            scenario=InterferenceScenario("worst", self.contenders, "worst"),
        ).cycles
        estimate = int(round(contention * self.safety_margin))
        policy_name = (
            policy.kind.value if isinstance(policy, EccPolicy) else str(policy)
        )
        return WcetBound(
            policy=policy_name,
            observed_isolation_cycles=isolation,
            observed_contention_cycles=contention,
            wcet_estimate_cycles=estimate,
        )

    def write_policy_study(self, program: Program) -> Dict[str, WcetBound]:
        """WT+parity versus WB (LAEC and ideal) bounds for one program.

        Reproduces the shape of the paper's motivating claim: the WCET of
        the write-through configuration inflates far more under bus
        contention than the write-back ones because every store becomes a
        bus transaction.
        """
        return {
            "wt-parity": self.bound_for(program, EccPolicyKind.WT_PARITY),
            "wb-laec": self.bound_for(program, EccPolicyKind.LAEC),
            "wb-no-ecc": self.bound_for(program, EccPolicyKind.NO_ECC),
        }
