"""Analysis utilities: metrics, energy model, WCET bounds and reporting."""

from repro.analysis.energy import EnergyModel, EnergyReport
from repro.analysis.metrics import PolicyComparison, compare_policies, geometric_mean
from repro.analysis.reporting import Table, render_csv, render_table
from repro.analysis.timing_budget import TimingBudget
from repro.analysis.wcet import WcetAnalysis, WcetBound

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "PolicyComparison",
    "Table",
    "TimingBudget",
    "WcetAnalysis",
    "WcetBound",
    "compare_policies",
    "geometric_mean",
    "render_csv",
    "render_table",
]
