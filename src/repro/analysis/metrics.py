"""Cross-policy comparison metrics (the arithmetic behind Figure 8)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from repro.simulation import SimulationResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class PolicyComparison:
    """Execution-time comparison of several policies against a baseline."""

    baseline_policy: str
    #: benchmark -> policy -> cycles
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, benchmark: str, policy: str, cycle_count: int) -> None:
        self.cycles.setdefault(benchmark, {})[policy] = cycle_count

    def benchmarks(self) -> List[str]:
        return sorted(self.cycles)

    def policies(self) -> List[str]:
        names: List[str] = []
        for per_policy in self.cycles.values():
            for name in per_policy:
                if name not in names:
                    names.append(name)
        return names

    def increase(self, benchmark: str, policy: str) -> float:
        """Relative execution-time increase of ``policy`` over the baseline."""
        per_policy = self.cycles[benchmark]
        baseline = per_policy[self.baseline_policy]
        return per_policy[policy] / baseline - 1.0

    def average_increase(self, policy: str) -> float:
        """Arithmetic mean of the per-benchmark increases (as in the paper)."""
        benchmarks = self.benchmarks()
        if not benchmarks:
            return 0.0
        return sum(self.increase(b, policy) for b in benchmarks) / len(benchmarks)

    def normalised_geomean(self, policy: str) -> float:
        """Geometric mean of normalised execution times (1.0 = baseline)."""
        ratios = [
            self.cycles[b][policy] / self.cycles[b][self.baseline_policy]
            for b in self.benchmarks()
        ]
        return geometric_mean(ratios)

    def improvement_over(self, policy: str, other: str) -> float:
        """Average reduction in overhead of ``policy`` relative to ``other``.

        The paper summarises LAEC as a "6% / 13% decrease in performance
        degradation" versus Extra Stage / Extra Cycle; this is the
        corresponding quantity: mean over benchmarks of
        ``increase(other) - increase(policy)``.
        """
        benchmarks = self.benchmarks()
        if not benchmarks:
            return 0.0
        return sum(
            self.increase(b, other) - self.increase(b, policy) for b in benchmarks
        ) / len(benchmarks)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for table rendering: one per benchmark plus average."""
        policies = [p for p in self.policies() if p != self.baseline_policy]
        rows: List[Dict[str, float]] = []
        for benchmark in self.benchmarks():
            row: Dict[str, float] = {"benchmark": benchmark}
            for policy in policies:
                row[policy] = self.increase(benchmark, policy)
            rows.append(row)
        average_row: Dict[str, float] = {"benchmark": "average"}
        for policy in policies:
            average_row[policy] = self.average_increase(policy)
        rows.append(average_row)
        return rows


def compare_policies(
    results: Mapping[str, Mapping[str, SimulationResult]],
    *,
    baseline: str = "no-ecc",
) -> PolicyComparison:
    """Build a :class:`PolicyComparison` from nested simulation results.

    ``results`` maps benchmark name -> policy name -> simulation result.
    """
    comparison = PolicyComparison(baseline_policy=baseline)
    for benchmark, per_policy in results.items():
        for policy, result in per_policy.items():
            comparison.add(benchmark, policy, result.cycles)
    return comparison
