"""Stage-time feasibility argument for the LAEC address adder.

Section III-E of the paper argues, using CACTI numbers for a LEON4-class
register file (1088 bits) and a 16 KiB DL1 in 65 nm, that the difference
between the register-file access time and the DL1 access time leaves
enough slack in the Register-Access stage to fit a 32-bit adder, so
anticipating the address computation does not lengthen the clock period.

The constants below are representative access times (nanoseconds) for
that technology class; as with the energy model, only the *relation*
between them matters for the claim, and the experiment that uses this
module reports the slack explicitly so the assumption is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingBudget:
    """Access/propagation times in nanoseconds (65 nm class defaults)."""

    register_file_access_ns: float = 0.45
    dl1_access_ns: float = 1.10
    adder_32bit_ns: float = 0.35
    ecc_check_ns: float = 0.65
    clock_period_ns: float = 6.67  # 150 MHz LEON4 (paper Table I)

    @property
    def register_stage_slack_ns(self) -> float:
        """Slack of the Register-Access stage versus the DL1-limited stage."""
        return self.dl1_access_ns - self.register_file_access_ns

    def adder_fits_in_register_stage(self) -> bool:
        """The paper's feasibility condition for LAEC's anticipated add."""
        return self.adder_32bit_ns <= self.register_stage_slack_ns

    def ecc_fits_in_cycle_with_dl1(self) -> bool:
        """Whether DL1 access + SECDED check fit in one clock period.

        When this holds, even the naive "check in the same cycle" design
        would work (by reducing frequency, option 1 of Section II-B);
        when it does not at the target frequency, one of the pipelined
        schemes — Extra Cycle, Extra Stage or LAEC — is required.
        """
        return self.dl1_access_ns + self.ecc_check_ns <= self.clock_period_ns

    def summary(self) -> dict:
        return {
            "register_file_access_ns": self.register_file_access_ns,
            "dl1_access_ns": self.dl1_access_ns,
            "adder_32bit_ns": self.adder_32bit_ns,
            "register_stage_slack_ns": self.register_stage_slack_ns,
            "adder_fits": self.adder_fits_in_register_stage(),
            "ecc_check_ns": self.ecc_check_ns,
            "clock_period_ns": self.clock_period_ns,
            "ecc_fits_in_cycle": self.ecc_fits_in_cycle_with_dl1(),
        }
