"""Plain-text and CSV rendering of result tables.

The benchmark harness regenerates the paper's tables/figures as ASCII
tables (plus CSV for post-processing); no plotting dependencies are
required, which keeps the reproduction runnable in minimal environments.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, *, float_format: str = "{:.2f}") -> str:
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


@dataclass
class Table:
    """A small column-ordered table."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)

    def add_row(self, **values: Cell) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns in row: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Cell]:
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name, "") for row in self.rows]

    def render(self, *, float_format: str = "{:.2f}") -> str:
        return render_table(self, float_format=float_format)

    def to_csv(self) -> str:
        return render_csv(self)


def render_table(table: Table, *, float_format: str = "{:.2f}") -> str:
    """Render the table as aligned monospace text."""
    header = list(table.columns)
    body = [
        [_format_cell(row.get(col, ""), float_format=float_format) for col in header]
        for row in table.rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title, "=" * len(table.title)]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def render_csv(table: Table) -> str:
    """Render the table as CSV text (header row first)."""
    buffer = io.StringIO()
    buffer.write(",".join(table.columns) + "\n")
    for row in table.rows:
        buffer.write(
            ",".join(_format_cell(row.get(col, ""), float_format="{:.6f}") for col in table.columns)
            + "\n"
        )
    return buffer.getvalue()


def percentage(value: float, *, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.173 -> '17.3%')."""
    return f"{value * 100:.{digits}f}%"


def bar_chart(
    values: Dict[str, float],
    *,
    width: int = 50,
    maximum: Optional[float] = None,
    unit: str = "",
) -> str:
    """Tiny horizontal ASCII bar chart (used for figure-style output)."""
    if not values:
        return "(no data)"
    peak = maximum if maximum is not None else max(values.values())
    peak = peak or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        filled = int(round(width * value / peak)) if peak else 0
        lines.append(
            f"{key.ljust(label_width)} | {'#' * filled}{' ' * (width - filled)} "
            f"{value:.3f}{unit}"
        )
    return "\n".join(lines)
