"""Dynamic-power and leakage-energy model.

Section IV-A of the paper makes two energy claims:

* the extra hardware of LAEC (a 32-bit adder and two register-file read
  ports) changes dynamic power by less than 1 %, because energy is
  dominated by the cache arrays [paper reference [26]];
* leakage *energy* grows proportionally to execution time, so the 17 % /
  10 % / < 4 % slowdowns of Extra Cycle / Extra Stage / LAEC translate
  into the same relative leakage-energy increases.

The model here uses CACTI-class per-access energy constants (relative
units; only ratios matter) and a leakage power constant, which is all
that is needed to reproduce those two statements quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.policies import EccPolicy
from repro.simulation import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energies and leakage power (arbitrary units)."""

    dl1_read_energy: float = 10.0
    dl1_write_energy: float = 12.0
    dl1_ecc_check_energy: float = 1.8
    dl1_ecc_encode_energy: float = 2.0
    l2_access_energy: float = 40.0
    register_file_read_energy: float = 0.10
    adder_energy: float = 0.05
    core_base_energy_per_instruction: float = 3.0
    leakage_power_per_cycle: float = 1.2

    def lookahead_overhead_per_load(self) -> float:
        """Extra dynamic energy of one anticipated load.

        Two additional register-file read ports are exercised and one
        extra 32-bit add is performed (paper Section III-A/III-E).
        """
        return 2 * self.register_file_read_energy + self.adder_energy


@dataclass
class EnergyReport:
    """Energy breakdown of one simulation."""

    policy: str
    dynamic: float
    leakage: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    def relative_to(self, baseline: "EnergyReport") -> Dict[str, float]:
        """Relative deltas versus a baseline report."""
        return {
            "dynamic": self.dynamic / baseline.dynamic - 1.0 if baseline.dynamic else 0.0,
            "leakage": self.leakage / baseline.leakage - 1.0 if baseline.leakage else 0.0,
            "total": self.total / baseline.total - 1.0 if baseline.total else 0.0,
        }


def estimate_energy(
    result: SimulationResult, *, model: EnergyModel | None = None
) -> EnergyReport:
    """Estimate dynamic and leakage energy for one simulation result."""
    model = model or EnergyModel()
    stats = result.stats
    policy: EccPolicy = result.policy

    dl1_reads = stats.loads
    dl1_writes = stats.stores
    ecc_checks = stats.load_hits if policy.detects_errors else 0
    ecc_encodes = stats.stores if policy.detects_errors else 0
    l2_accesses = stats.load_misses + result.timing.bus_transactions
    lookaheads = stats.lookahead.lookaheads_taken

    breakdown = {
        "core": stats.instructions * model.core_base_energy_per_instruction,
        "dl1_read": dl1_reads * model.dl1_read_energy,
        "dl1_write": dl1_writes * model.dl1_write_energy,
        "ecc_check": ecc_checks * model.dl1_ecc_check_energy,
        "ecc_encode": ecc_encodes * model.dl1_ecc_encode_energy,
        "l2": l2_accesses * model.l2_access_energy,
        "lookahead": lookaheads * model.lookahead_overhead_per_load(),
    }
    dynamic = sum(breakdown.values())
    leakage = stats.cycles * model.leakage_power_per_cycle
    return EnergyReport(
        policy=policy.kind.value,
        dynamic=dynamic,
        leakage=leakage,
        breakdown=breakdown,
    )
