"""Determinism & fork-safety static analyzer.

Rule-driven AST lint for the repro codebase.  Three rule families
tailored to the project's invariants:

* **D-rules** — determinism: wall-clock, entropy, pids and unsorted
  set/dict iteration fenced out of deterministic modules;
* **P-rules** — pickle & pool safety: ``__reduce__`` fidelity across
  the campaign error taxonomy, pool-submitted closures over module
  mutables, sqlite connections crossing fork boundaries;
* **S-rules** — store & schema: raw SQL bypassing the checksum API,
  observability names drifting from the architecture doc's tables.

Entry points: ``python -m repro lint`` (CLI) and
:func:`~repro.analysis.lint.engine.lint_paths` /
:func:`~repro.analysis.lint.engine.lint_sources` (API).
"""

from repro.analysis.lint.engine import (
    apply_baseline,
    collect_files,
    find_architecture_doc,
    lint_paths,
    lint_sources,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.findings import (
    Finding,
    LintReport,
    REPORT_SCHEMA,
    REPORT_VERSION,
    validate_report,
)
from repro.analysis.lint.manifest import (
    ModuleClassification,
    classify,
    manifest_table,
)
from repro.analysis.lint.rules import (
    RULES,
    SYNTHETIC_RULES,
    all_rule_ids,
    rule_catalogue,
)
from repro.analysis.lint.storerules import parse_documented_names

__all__ = [
    "Finding",
    "LintReport",
    "ModuleClassification",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "RULES",
    "SYNTHETIC_RULES",
    "all_rule_ids",
    "apply_baseline",
    "classify",
    "collect_files",
    "find_architecture_doc",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "manifest_table",
    "parse_documented_names",
    "rule_catalogue",
    "validate_report",
    "write_baseline",
]
