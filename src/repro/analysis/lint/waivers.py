"""Inline waivers: ``# repro: allow[RULE-ID] reason=...``.

A waiver suppresses one rule on one line.  It lives either at the end
of the offending line or on a comment line of its own immediately
above it (conventional for long lines).  Waivers are themselves
linted:

* a waiver that names an unknown rule id, or omits its ``reason=``,
  is **malformed** — rule ``W402``;
* a waiver that suppresses nothing (the code it covered was fixed or
  moved) is **stale** — rule ``W401`` — so waivers can never silently
  outlive their justification.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.analysis.lint.findings import Finding, finding

#: The waiver grammar.  The rule id is validated separately so a typo'd
#: id is reported as malformed rather than silently ignored.
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[^\]]*)\]\s*(?P<rest>.*)$"
)
_REASON_RE = re.compile(r"^reason=(?P<reason>\S.*)$")
_RULE_ID_RE = re.compile(r"^[A-Z]\d{3}$")


@dataclass
class Waiver:
    """One parsed waiver comment."""

    line: int  # the line the waiver comment sits on (1-based)
    target_line: int  # the code line it suppresses
    rule: str
    reason: str
    used: bool = field(default=False)


def _comment_tokens(
    source_lines: Sequence[str],
) -> Iterator[Tuple[int, int, str]]:
    """``(line, column, text)`` of every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps waiver-like
    text inside docstrings and string literals from parsing as waivers.
    Sources that will not tokenize fall back to a plain line scan.
    """
    source = "\n".join(source_lines) + "\n"
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for index, raw in enumerate(source_lines, start=1):
            at = raw.find("#")
            if at >= 0:
                yield index, at, raw[at:]


def parse_waivers(
    source_lines: Sequence[str], path: str, known_rules: Sequence[str]
) -> "tuple[List[Waiver], List[Finding]]":
    """Extract waivers (and W402 malformed-waiver findings) from source.

    A waiver on a comment-only line targets the next non-blank,
    non-comment line; a trailing waiver targets its own line.
    """
    waivers: List[Waiver] = []
    problems: List[Finding] = []
    known = set(known_rules)
    for index, column, comment in _comment_tokens(source_lines):
        raw = source_lines[index - 1] if index <= len(source_lines) else comment
        match = _WAIVER_RE.search(comment)
        if match is None:
            continue
        rule_id = match.group("rule").strip()
        rest = match.group("rest").strip()
        snippet = raw.strip()
        if not _RULE_ID_RE.match(rule_id) or rule_id not in known:
            problems.append(
                finding(
                    "W402",
                    path,
                    index,
                    f"malformed waiver: unknown rule id {rule_id!r}",
                    snippet,
                )
            )
            continue
        reason_match = _REASON_RE.match(rest)
        if reason_match is None:
            problems.append(
                finding(
                    "W402",
                    path,
                    index,
                    f"malformed waiver for {rule_id}: missing 'reason=...'",
                    snippet,
                )
            )
            continue
        before_comment = raw[:column].strip()
        target = index
        if not before_comment:
            # A standalone waiver comment covers the next code line.
            target = _next_code_line(source_lines, index)
        waivers.append(
            Waiver(
                line=index,
                target_line=target,
                rule=rule_id,
                reason=reason_match.group("reason").strip(),
            )
        )
    return waivers, problems


def _next_code_line(source_lines: Sequence[str], after: int) -> int:
    """The first non-blank, non-comment line after line ``after``."""
    for index in range(after, len(source_lines)):
        text = source_lines[index].strip()
        if text and not text.startswith("#"):
            return index + 1
    return after  # dangling waiver at EOF: stays stale


def apply_waivers(
    findings: List[Finding], waivers: List[Waiver], path: str
) -> List[Finding]:
    """Mark waived findings, and return W401 findings for stale waivers."""
    by_target: Dict[int, List[Waiver]] = {}
    for waiver in waivers:
        by_target.setdefault(waiver.target_line, []).append(waiver)
    for item in findings:
        for waiver in by_target.get(item.line, ()):
            if waiver.rule == item.rule:
                item.waived = True
                item.waive_reason = waiver.reason
                waiver.used = True
    stale: List[Finding] = []
    for waiver in waivers:
        if not waiver.used:
            stale.append(
                finding(
                    "W401",
                    path,
                    waiver.line,
                    f"stale waiver: {waiver.rule} no longer fires on "
                    f"line {waiver.target_line}",
                    f"# repro: allow[{waiver.rule}] reason={waiver.reason}",
                )
            )
    return stale


__all__ = ["Waiver", "apply_waivers", "parse_waivers"]
