"""The module-classification manifest.

Every module under ``src/repro/`` belongs to exactly one **class** that
decides which rule families apply to it, plus optional capability
**tags** that grant narrow exemptions.  The manifest is the single
place where "this module is allowed wall-clock" lives — rules never
hard-code module names.

Classes
-------
``core``
    Deterministic-core: anything whose computation can reach canonical
    spec JSON, store payloads or summary rendering.  Wall-clock,
    entropy and pid rules (D101/D102/D104) apply.  This is the default.
``serialization``
    Core modules that additionally canonicalise, merge or serialise
    payloads — the D103 unsorted-iteration rule applies on top of the
    core rules.
``telemetry``
    The observability side channel: wall-clock timestamps and pids are
    its *job*; D-rules are off (S-rules still apply).
``console``
    Console/CLI formatting seams — human-facing, never persisted.
``cli``
    Entry points (``__main__``): argument parsing and process exit.
``bench``
    Benchmark harnesses: report wall-clock by design.
``tool``
    The static analyzer itself.

Tags
----
``allow-pid``
    ``os.getpid()`` is legitimate here (shard naming, self-signalling).
``allow-wallclock``
    Wall-clock reads are legitimate here.
``store-api``
    The sanctioned home of raw SQL against the ``results`` table; S301
    flags such SQL everywhere else.
"""

from __future__ import annotations

import fnmatch
import pathlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

#: Module classes whose members get the determinism rules (D1xx).
DETERMINISTIC_CLASSES = frozenset({"core", "serialization"})

#: All recognised module classes.
MODULE_CLASSES = frozenset(
    {"core", "serialization", "telemetry", "console", "cli", "bench", "tool"}
)

#: All recognised capability tags.
KNOWN_TAGS = frozenset({"allow-pid", "allow-wallclock", "store-api"})

#: Exception taxonomies whose instances cross process-pool boundaries
#: pickled; the P-rules enforce ``__reduce__`` fidelity over every
#: class rooted here (the PR 8 bug class).
PICKLED_EXCEPTION_ROOTS = frozenset({"CampaignError"})

#: Functions the process pool runs as warm-worker initializers —
#: module-level mutable state they assign is fork-safe by construction.
WORKER_INITIALIZERS = frozenset({"warm_lean_golden"})

#: ``(glob pattern, class, tags)`` triples, first match wins.  Patterns
#: match the module path relative to the ``repro`` package root, posix
#: separators.
_RULES: Tuple[Tuple[str, str, FrozenSet[str]], ...] = (
    ("analysis/lint/*", "tool", frozenset()),
    ("telemetry/*", "telemetry", frozenset()),
    ("perf/*", "bench", frozenset()),
    ("__main__.py", "cli", frozenset()),
    # Shard files are named by pid — the one sanctioned pid sink
    # outside telemetry (ISSUE 10 rule scope).
    ("store/sharding.py", "serialization", frozenset({"allow-pid", "store-api"})),
    ("store/result_store.py", "serialization", frozenset({"store-api"})),
    ("store/canonical.py", "serialization", frozenset()),
    ("store/serialize.py", "serialization", frozenset()),
    # The failure taxonomy serialises structured payloads into the
    # store's quarantine table.
    ("campaign/errors.py", "serialization", frozenset()),
    ("*", "core", frozenset()),
)


@dataclass(frozen=True)
class ModuleClassification:
    """The manifest's verdict for one module."""

    module: str  # path relative to the repro package root (posix)
    module_class: str
    tags: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def deterministic(self) -> bool:
        return self.module_class in DETERMINISTIC_CLASSES

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags


def _package_relative(path: Union[str, pathlib.Path]) -> str:
    """The path relative to the ``repro`` package root, best effort.

    ``src/repro/store/canonical.py`` → ``store/canonical.py``; paths
    outside any ``repro`` directory are returned as-is (their posix
    form), so fixture files simply fall through to the default class.
    """
    parts = pathlib.PurePosixPath(pathlib.Path(path).as_posix()).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return "/".join(parts)


def classify(
    path: Union[str, pathlib.Path],
    *,
    overrides: Optional[Sequence[Tuple[str, str, FrozenSet[str]]]] = None,
) -> ModuleClassification:
    """Classify one module path against the manifest.

    ``overrides`` prepends extra ``(pattern, class, tags)`` rules —
    the fixture tests use it to pin a snippet's class explicitly.
    """
    module = _package_relative(path)
    rules = tuple(overrides or ()) + _RULES
    for pattern, module_class, tags in rules:
        if fnmatch.fnmatchcase(module, pattern):
            return ModuleClassification(
                module=module, module_class=module_class, tags=frozenset(tags)
            )
    return ModuleClassification(module=module, module_class="core")


def manifest_table() -> List[Tuple[str, str, Tuple[str, ...]]]:
    """The manifest as ``(pattern, class, sorted tags)`` rows (docs/CLI)."""
    return [
        (pattern, module_class, tuple(sorted(tags)))
        for pattern, module_class, tags in _RULES
    ]


__all__ = [
    "DETERMINISTIC_CLASSES",
    "KNOWN_TAGS",
    "MODULE_CLASSES",
    "ModuleClassification",
    "PICKLED_EXCEPTION_ROOTS",
    "WORKER_INITIALIZERS",
    "classify",
    "manifest_table",
]
