"""S-rules: store and schema discipline.

S301 keeps every write to the ``results`` table inside the sanctioned
checksum API (:mod:`repro.store.result_store`): a raw INSERT anywhere
else would create rows the integrity scan calls corrupt.  S302/S303
pin the observability *name* contract both ways: every metric, span,
event and phase name emitted in code must appear in the architecture
doc's tables, and every documented name must still be emitted
somewhere — so the tables can never drift again (they already had:
PR 9's ``merge`` phase and shard counters were missing when this rule
first ran).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.lint.rules import (
    DocumentedNames,
    ModuleContext,
    ProjectContext,
    rule,
)

# --------------------------------------------------------------------- #
# S301: raw SQL against the results table                               #
# --------------------------------------------------------------------- #
_SQL_WRITE_RE = re.compile(
    r"\b(INSERT|REPLACE|UPDATE|DELETE)\b[^;]*\bresults\b", re.IGNORECASE
)


def _sql_text(node: ast.AST) -> Optional[str]:
    """The literal text of a (possibly f-string) SQL argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = [
            value.value
            for value in node.values
            if isinstance(value, ast.Constant) and isinstance(value.value, str)
        ]
        return "".join(parts)
    return None


@rule("S301", "results-table write outside the checksum API")
def check_store_bypass(context: ModuleContext) -> None:
    if context.classification.has_tag("store-api"):
        return
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("execute", "executemany", "executescript")
            and node.args
        ):
            continue
        sql = _sql_text(node.args[0])
        if sql is not None and _SQL_WRITE_RE.search(sql):
            context.add(
                "S301",
                node,
                "raw SQL write to the results table outside the "
                "checksum API — rows written here bypass payload "
                "checksums and will be dropped as corrupt",
            )


# --------------------------------------------------------------------- #
# documented-name extraction (the architecture doc's tables)            #
# --------------------------------------------------------------------- #
_METRIC_TOKEN_RE = re.compile(r"`((?:campaign|store)_[a-z0-9_]+)`")
_LABEL_ENUM_RE = re.compile(r"`phase=([a-z0-9_|\\]+)`")
_BACKTICK_RE = re.compile(r"`([a-z0-9_-]+)`")


def parse_documented_names(text: str, path: str) -> DocumentedNames:
    """Extract the observability name tables from the architecture doc.

    Only the ``## Observability`` section is scanned, so experiment or
    artifact names mentioned elsewhere never masquerade as metrics.
    Span and event names come from the dedicated ``| span |`` /
    ``| event |`` table rows; phase names from the
    ``phase=a|b|c`` label cell of the phase histogram row.
    """
    documented = DocumentedNames(path=path)
    in_section = False
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("## "):
            in_section = stripped.lower() == "## observability"
            continue
        if not in_section or not stripped.startswith("|"):
            continue
        cell_kind = stripped.strip("|").split("|")[0].strip().strip("`")
        if cell_kind in ("span", "event"):
            bucket = documented.spans if cell_kind == "span" else documented.events
            rest = stripped.split("|", 2)[2]
            for token in _BACKTICK_RE.findall(rest):
                bucket.add(token)
                documented.lines.setdefault(f"{cell_kind}:{token}", number)
            continue
        for token in _METRIC_TOKEN_RE.findall(stripped):
            documented.metrics.add(token)
            documented.lines.setdefault(f"metric:{token}", number)
        for enum in _LABEL_ENUM_RE.findall(stripped):
            for phase in re.split(r"\\\||\|", enum):
                if phase:
                    documented.phases.add(phase)
                    documented.lines.setdefault(f"phase:{phase}", number)
    return documented


# --------------------------------------------------------------------- #
# emitted-name extraction (call sites in code)                          #
# --------------------------------------------------------------------- #
#: kind -> dotted-call suffixes whose first literal argument names one
#: observability object.  Resolution goes through the import map, so
#: ``_metrics.inc`` and ``repro.telemetry.metrics.inc`` both match.
_EMITTERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("metric", (".inc", ".observe", ".set_gauge")),
    ("phase", (".observe_phase", ".phase_timer")),
    ("span", (".begin_span", ".emit_span")),
    ("event", ("trace.event",)),
)
_BARE_EMITTERS = {
    "inc": "metric",
    "observe": "metric",
    "set_gauge": "metric",
    "observe_phase": "phase",
    "phase_timer": "phase",
    "begin_span": "span",
    "emit_span": "span",
}


def emitted_names(
    context: ModuleContext,
) -> Iterable[Tuple[str, str, ast.Call]]:
    """``(kind, name, call node)`` for every literal-named emission."""
    for node in ast.walk(context.tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        dotted = context.imports.dotted(node.func)
        if dotted is None:
            continue
        kind = None
        for candidate, suffixes in _EMITTERS:
            if any(dotted.endswith(suffix) for suffix in suffixes):
                kind = candidate
                break
        if kind is None:
            kind = _BARE_EMITTERS.get(dotted)
        if kind is None:
            continue
        name = context.literal_str(node.args[0])
        if name is not None:
            yield kind, name, node


_KIND_SETS = {
    "metric": "metrics",
    "phase": "phases",
    "span": "spans",
    "event": "events",
}


@rule("S302", "observability name emitted but not documented", scope="project")
def check_undocumented_names(project: ProjectContext) -> None:
    documented = project.documented
    if documented is None:
        return
    for context in project.modules:
        if context.classification.module_class == "tool":
            continue
        for kind, name, node in emitted_names(context):
            known: Set[str] = getattr(documented, _KIND_SETS[kind])
            if name not in known:
                context.add(
                    "S302",
                    node,
                    f"{kind} name {name!r} is emitted here but missing "
                    f"from the {documented.path} observability tables",
                )


@rule("S303", "observability name documented but never emitted", scope="project")
def check_unemitted_names(project: ProjectContext) -> None:
    documented = project.documented
    if documented is None:
        return
    emitted: Set[Tuple[str, str]] = set()
    for context in project.modules:
        for kind, name, _node in emitted_names(context):
            emitted.add((kind, name))
    for kind, attr in _KIND_SETS.items():
        for name in sorted(getattr(documented, attr)):
            if (kind, name) not in emitted:
                line = documented.lines.get(f"{kind}:{name}", 0)
                project.add(
                    "S303",
                    documented.path,
                    line,
                    f"documented {kind} name {name!r} is never emitted "
                    f"by the scanned modules — stale table row?",
                )


__all__ = [
    "check_store_bypass",
    "check_undocumented_names",
    "check_unemitted_names",
    "emitted_names",
    "parse_documented_names",
]
