"""The rule registry and the per-module analysis context.

A rule is a function registered under a stable id (``D101``, ``P201``,
``S302``...).  Module rules see one :class:`ModuleContext` (parsed AST,
classification, import map); project rules see the whole
:class:`ProjectContext` after every module was scanned — that is where
cross-module checks (documented-vs-emitted names, exception taxonomies
spanning files) live.

The registry is the single source of the rule catalogue: ids, titles
and the families the documentation renders come from here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.findings import Finding, finding
from repro.analysis.lint.manifest import ModuleClassification


# --------------------------------------------------------------------- #
# import resolution                                                     #
# --------------------------------------------------------------------- #
class ImportMap:
    """Resolves local names to canonical dotted paths.

    ``import time`` maps ``time`` → ``time``; ``from time import
    monotonic`` maps ``monotonic`` → ``time.monotonic``; ``import
    datetime as dt`` maps ``dt`` → ``datetime``.  :meth:`dotted` then
    canonicalises a call target: ``dt.datetime.now`` →
    ``datetime.datetime.now``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{node.module}.{alias.name}"

    def dotted(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])


# --------------------------------------------------------------------- #
# contexts                                                              #
# --------------------------------------------------------------------- #
@dataclass
class ModuleContext:
    """Everything a module rule can see about one file."""

    path: str  # display path (as given to the engine)
    classification: ModuleClassification
    tree: ast.Module
    source_lines: Sequence[str]
    imports: ImportMap
    #: Module-level ``NAME = "literal"`` string constants (S302 uses
    #: them to resolve names like ``PHASE_METRIC``).
    str_constants: Dict[str, str] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.str_constants[node.targets[0].id] = node.value.value

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def add(self, rule_id: str, node_or_line, message: str) -> None:
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else getattr(node_or_line, "lineno", 0)
        )
        self.findings.append(
            finding(rule_id, self.path, line, message, self.snippet(line))
        )

    def literal_str(self, node: ast.AST) -> Optional[str]:
        """A string literal or module-level string constant, else None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.str_constants.get(node.id)
        return None


@dataclass
class ProjectContext:
    """The whole lint run, for cross-module rules."""

    modules: List[ModuleContext]
    #: Documented observability names (None: no doc source available,
    #: the S-rules that need it skip).
    documented: Optional["DocumentedNames"] = None
    findings: List[Finding] = field(default_factory=list)

    def add(self, rule_id: str, path: str, line: int, message: str, snippet: str = "") -> None:
        self.findings.append(finding(rule_id, path, line, message, snippet))


@dataclass
class DocumentedNames:
    """Observability names extracted from the architecture doc."""

    path: str
    metrics: Set[str] = field(default_factory=set)
    phases: Set[str] = field(default_factory=set)
    spans: Set[str] = field(default_factory=set)
    events: Set[str] = field(default_factory=set)
    #: Doc line each name was found on (for anchoring S303 findings).
    lines: Dict[str, int] = field(default_factory=dict)


# --------------------------------------------------------------------- #
# the registry                                                          #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RuleInfo:
    id: str
    title: str
    scope: str  # "module" | "project"
    func: Callable

    @property
    def family(self) -> str:
        return {
            "D": "determinism",
            "P": "pickle & pool safety",
            "S": "store & schema",
            "W": "waiver hygiene",
            "E": "engine",
        }[self.id[0]]


RULES: Dict[str, RuleInfo] = {}


def rule(rule_id: str, title: str, *, scope: str = "module"):
    """Register a rule implementation under its stable id."""

    def decorate(func: Callable) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = RuleInfo(id=rule_id, title=title, scope=scope, func=func)
        return func

    return decorate


#: Rule ids that exist only as findings (no registered checker): waiver
#: hygiene and parse errors are produced by the engine itself.
SYNTHETIC_RULES: Dict[str, str] = {
    "W401": "stale waiver (suppresses nothing)",
    "W402": "malformed waiver (unknown rule id or missing reason)",
    "E001": "file failed to parse",
}


def all_rule_ids() -> List[str]:
    """Every id a waiver may name, sorted."""
    return sorted(set(RULES) | set(SYNTHETIC_RULES))


def rule_catalogue() -> List[Tuple[str, str]]:
    """``(id, title)`` rows for docs and ``--list-rules``."""
    rows = [(info.id, info.title) for info in RULES.values()]
    rows.extend(SYNTHETIC_RULES.items())
    return sorted(rows)


def module_rules() -> List[RuleInfo]:
    return [info for info in RULES.values() if info.scope == "module"]


def project_rules() -> List[RuleInfo]:
    return [info for info in RULES.values() if info.scope == "project"]


__all__ = [
    "DocumentedNames",
    "ImportMap",
    "ModuleContext",
    "ProjectContext",
    "RULES",
    "RuleInfo",
    "SYNTHETIC_RULES",
    "all_rule_ids",
    "module_rules",
    "project_rules",
    "rule",
    "rule_catalogue",
]
