"""The lint data model: findings, their JSON form, and its schema.

A :class:`Finding` is one rule violation at one source location.  The
engine collects findings, applies waivers and baselines, and renders
them either as human-readable text or as a JSON report whose shape is
pinned by :data:`REPORT_SCHEMA` — the same stdlib-only structural
validation idiom as :mod:`repro.telemetry.schema`, so CI can assert the
``--json`` output never drifts silently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump when the JSON report shape changes.
REPORT_VERSION = 1


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str  # e.g. "D101"
    path: str  # repo-relative (or as-given) posix path
    line: int  # 1-based; 0 for file-level findings
    message: str
    #: The stripped source line the finding anchors to ("" when the
    #: file has no such line, e.g. project-level doc findings).
    snippet: str = ""
    #: Set once a waiver comment covers this finding.
    waived: bool = False
    waive_reason: str = ""
    #: Set once a baseline entry covers this finding.
    baselined: bool = False

    @property
    def suppressed(self) -> bool:
        """Whether the finding blocks a ``--strict`` run."""
        return self.waived or self.baselined

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files.

        Hashing the *snippet* rather than the line number keeps a
        baseline stable across unrelated edits above the finding.
        """
        basis = "\x1f".join((self.rule, self.path, self.snippet, self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
            "waived": self.waived,
            "baselined": self.baselined,
        }
        if self.waived:
            payload["waive_reason"] = self.waive_reason
        return payload

    def describe(self) -> str:
        suffix = ""
        if self.waived:
            suffix = f"  [waived: {self.waive_reason}]"
        elif self.baselined:
            suffix = "  [baselined]"
        return f"{self.location()}: {self.rule} {self.message}{suffix}"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Files that failed to parse (reported as E001 findings too).
    parse_errors: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that count against ``--strict`` (not suppressed)."""
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def waived(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.waived]

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    def to_payload(self) -> Dict[str, object]:
        return {
            "v": REPORT_VERSION,
            "files_scanned": self.files_scanned,
            "parse_errors": self.parse_errors,
            "findings": [finding.to_payload() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "active": len(self.active),
                "waived": len(self.waived),
                "baselined": sum(1 for f in self.findings if f.baselined),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, indent=2)

    def render(self) -> str:
        """The human-readable report."""
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.describe())
        active = len(self.active)
        lines.append(
            f"{self.files_scanned} file(s) scanned: "
            f"{len(self.findings)} finding(s), {active} active, "
            f"{len(self.waived)} waived, "
            f"{sum(1 for f in self.findings if f.baselined)} baselined"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# the JSON report schema (stdlib structural validation)                 #
# --------------------------------------------------------------------- #

#: Structural schema of :meth:`LintReport.to_payload` — the contract CI
#: validates the ``--json`` output against.
REPORT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["v", "files_scanned", "parse_errors", "findings", "summary"],
    "properties": {
        "v": {"type": "integer"},
        "files_scanned": {"type": "integer"},
        "parse_errors": {"type": "integer"},
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "rule",
                    "path",
                    "line",
                    "message",
                    "snippet",
                    "fingerprint",
                    "waived",
                    "baselined",
                ],
                "properties": {
                    "rule": {"type": "string", "pattern_prefixes": "DPSWE"},
                    "path": {"type": "string"},
                    "line": {"type": "integer"},
                    "message": {"type": "string"},
                    "snippet": {"type": "string"},
                    "fingerprint": {"type": "string"},
                    "waived": {"type": "boolean"},
                    "baselined": {"type": "boolean"},
                    "waive_reason": {"type": "string"},
                },
            },
        },
        "summary": {
            "type": "object",
            "required": ["total", "active", "waived", "baselined"],
            "properties": {
                "total": {"type": "integer"},
                "active": {"type": "integer"},
                "waived": {"type": "integer"},
                "baselined": {"type": "integer"},
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
}


def _check(value: object, schema: Dict[str, object], where: str, problems: List[str]) -> None:
    expected = _TYPES[str(schema["type"])]
    if expected is int and isinstance(value, bool):
        problems.append(f"{where}: expected integer, got bool")
        return
    if not isinstance(value, expected):
        problems.append(
            f"{where}: expected {schema['type']}, got {type(value).__name__}"
        )
        return
    if expected is dict:
        assert isinstance(value, dict)
        for key in schema.get("required", ()):  # type: ignore[union-attr]
            if key not in value:
                problems.append(f"{where}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():  # type: ignore[union-attr]
            if key in value:
                _check(value[key], sub, f"{where}.{key}", problems)
    elif expected is list:
        assert isinstance(value, list)
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(value):
                _check(item, item_schema, f"{where}[{index}]", problems)  # type: ignore[arg-type]
    elif expected is str:
        prefixes = schema.get("pattern_prefixes")
        if prefixes and (not value or str(value)[0] not in str(prefixes)):
            problems.append(f"{where}: rule id {value!r} has an unknown family")


def validate_report(payload: object) -> List[str]:
    """Structural problems of a JSON report payload ([] when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report: expected object, got {type(payload).__name__}"]
    _check(payload, REPORT_SCHEMA, "report", problems)
    if not problems and payload.get("v") != REPORT_VERSION:
        problems.append(
            f"report.v: version {payload.get('v')!r} != {REPORT_VERSION}"
        )
    return problems


def finding(rule: str, path: str, line: int, message: str, snippet: str = "") -> Finding:
    """Shorthand constructor used by the rule implementations."""
    return Finding(rule=rule, path=path, line=line, message=message, snippet=snippet)


__all__ = [
    "Finding",
    "LintReport",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "finding",
    "validate_report",
]
