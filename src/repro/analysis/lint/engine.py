"""The lint engine: file collection, rule execution, waivers, baseline.

The pipeline per run:

1. collect ``.py`` files under the given paths (sorted walk, so the
   report order is machine-independent);
2. parse each file — a ``SyntaxError`` becomes an ``E001`` finding
   rather than aborting the run;
3. run every module rule against every module;
4. run every project rule (cross-module checks need all modules and
   the documented-name tables);
5. apply inline waivers — after the project rules, so cross-module
   findings like S302 are waivable too — and emit W401/W402 for
   stale/malformed waivers;
6. apply the baseline (line-number-independent fingerprints), sort,
   and assemble the :class:`~repro.analysis.lint.findings.LintReport`.
"""

from __future__ import annotations

import ast
import json
import pathlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.analysis.lint.findings import Finding, LintReport, finding
from repro.analysis.lint.manifest import classify
from repro.analysis.lint.rules import (
    DocumentedNames,
    ImportMap,
    ModuleContext,
    ProjectContext,
    all_rule_ids,
    module_rules,
    project_rules,
)
from repro.analysis.lint.waivers import apply_waivers, parse_waivers

# Importing the rule modules registers their checks.
import repro.analysis.lint.determinism  # noqa: F401  (registration)
import repro.analysis.lint.pickling  # noqa: F401  (registration)
import repro.analysis.lint.storerules  # noqa: F401  (registration)

from repro.analysis.lint.storerules import parse_documented_names

#: Version key of the baseline file format.
BASELINE_VERSION = 1

Overrides = Sequence[Tuple[str, str, FrozenSet[str]]]


# --------------------------------------------------------------------- #
# file collection                                                       #
# --------------------------------------------------------------------- #
def collect_files(paths: Sequence[Union[str, pathlib.Path]]) -> List[pathlib.Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    seen[child.as_posix()] = child
        elif path.suffix == ".py":
            seen[path.as_posix()] = path
    return [seen[key] for key in sorted(seen)]


def find_architecture_doc(
    start: Union[str, pathlib.Path],
) -> Optional[pathlib.Path]:
    """``ARCHITECTURE.md`` in ``start`` or the nearest ancestor, if any."""
    current = pathlib.Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        doc = candidate / "ARCHITECTURE.md"
        if doc.is_file():
            return doc
    return None


# --------------------------------------------------------------------- #
# the run                                                               #
# --------------------------------------------------------------------- #
def lint_sources(
    sources: Dict[str, str],
    *,
    documented: Optional[DocumentedNames] = None,
    overrides: Optional[Overrides] = None,
) -> LintReport:
    """Lint in-memory sources (``display path -> source text``).

    This is the testable core: :func:`lint_paths` reads files and
    delegates here.  ``overrides`` prepends manifest rules so fixtures
    can pin their module class.
    """
    report = LintReport()
    modules: List[ModuleContext] = []
    waivers_by_module: Dict[str, list] = {}
    known_rules = all_rule_ids()

    for path in sorted(sources):
        source = sources[path]
        report.files_scanned += 1
        source_lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.parse_errors += 1
            report.findings.append(
                finding(
                    "E001",
                    path,
                    exc.lineno or 0,
                    f"file failed to parse: {exc.msg}",
                )
            )
            continue
        context = ModuleContext(
            path=path,
            classification=classify(path, overrides=overrides),
            tree=tree,
            source_lines=source_lines,
            imports=ImportMap(tree),
        )
        modules.append(context)
        waivers, malformed = parse_waivers(source_lines, path, known_rules)
        waivers_by_module[path] = waivers
        report.findings.extend(malformed)

    for context in modules:
        for info in module_rules():
            info.func(context)

    project = ProjectContext(modules=modules, documented=documented)
    for info in project_rules():
        info.func(project)
    report.findings.extend(project.findings)

    # Waivers apply after the project rules so cross-module findings
    # (S302 anchors at emission sites) are waivable like any other.
    for context in modules:
        stale = apply_waivers(
            context.findings, waivers_by_module[context.path], context.path
        )
        report.findings.extend(context.findings)
        report.findings.extend(stale)

    report.sort()
    return report


def lint_paths(
    paths: Sequence[Union[str, pathlib.Path]],
    *,
    doc_path: Optional[Union[str, pathlib.Path]] = None,
    baseline_path: Optional[Union[str, pathlib.Path]] = None,
    overrides: Optional[Overrides] = None,
) -> LintReport:
    """Lint files/directories on disk.

    ``doc_path`` points at the architecture doc for the S302/S303
    cross-check; when omitted the nearest ``ARCHITECTURE.md`` above the
    first path is used, and when none exists those rules skip.
    """
    files = collect_files(paths)
    sources: Dict[str, str] = {}
    for path in files:
        sources[path.as_posix()] = path.read_text(encoding="utf-8")

    documented: Optional[DocumentedNames] = None
    doc = pathlib.Path(doc_path) if doc_path else (
        find_architecture_doc(files[0]) if files else None
    )
    if doc is not None and doc.is_file():
        documented = parse_documented_names(
            doc.read_text(encoding="utf-8"), doc.as_posix()
        )

    report = lint_sources(sources, documented=documented, overrides=overrides)
    if baseline_path is not None:
        apply_baseline(report, load_baseline(baseline_path))
    return report


# --------------------------------------------------------------------- #
# baseline                                                              #
# --------------------------------------------------------------------- #
def load_baseline(path: Union[str, pathlib.Path]) -> FrozenSet[str]:
    """Fingerprints recorded in a baseline file (empty if absent)."""
    baseline = pathlib.Path(path)
    if not baseline.is_file():
        return frozenset()
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    return frozenset(payload.get("fingerprints", ()))


def apply_baseline(report: LintReport, fingerprints: FrozenSet[str]) -> None:
    for item in report.findings:
        if item.fingerprint() in fingerprints:
            item.baselined = True


def write_baseline(report: LintReport, path: Union[str, pathlib.Path]) -> int:
    """Record every *active* finding's fingerprint; returns the count."""
    fingerprints = sorted({item.fingerprint() for item in report.active})
    payload = {"v": BASELINE_VERSION, "fingerprints": fingerprints}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(fingerprints)


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "collect_files",
    "find_architecture_doc",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "write_baseline",
]
