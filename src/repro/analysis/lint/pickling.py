"""P-rules: pickle and process-pool (fork) safety.

Campaign errors, submitted jobs and store handles all cross process
boundaries.  PR 8 shipped — and had to hot-fix — exactly the failure
mode P201 now catches structurally: an exception taxonomy whose
``__reduce__`` silently dropped ``details`` on the worker → supervisor
hop.  These rules make that bug class (and its siblings: signature
drift under an inherited ``__reduce__``, jobs leaning on module state a
fork never re-creates, SQLite connections crossing a fork) a lint
failure instead of a 2 a.m. debugging session.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.manifest import (
    PICKLED_EXCEPTION_ROOTS,
    WORKER_INITIALIZERS,
)
from repro.analysis.lint.rules import ModuleContext, ProjectContext, rule

_EXCEPTION_BASES = frozenset({"Exception", "BaseException"})


# --------------------------------------------------------------------- #
# P201/P202: exception taxonomy __reduce__ fidelity (project-wide)      #
# --------------------------------------------------------------------- #
@dataclass
class _ExceptionClass:
    """One class definition relevant to the pickled-exception rules."""

    name: str
    context: ModuleContext
    node: ast.ClassDef
    bases: Tuple[str, ...]
    init: Optional[ast.FunctionDef] = None
    reduce: Optional[ast.FunctionDef] = None
    #: ``self.X = ...`` attributes the constructor stores (minus args).
    state_attrs: Set[str] = field(default_factory=set)


def _collect_exception_classes(
    modules: List[ModuleContext],
) -> Dict[str, _ExceptionClass]:
    table: Dict[str, _ExceptionClass] = {}
    for context in modules:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base.id
                for base in node.bases
                if isinstance(base, ast.Name)
            )
            entry = _ExceptionClass(
                name=node.name, context=context, node=node, bases=bases
            )
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    if item.name == "__init__":
                        entry.init = item
                        entry.state_attrs = _stored_attrs(item)
                    elif item.name == "__reduce__":
                        entry.reduce = item
            # Later definitions win (shadowing is a test-fixture thing).
            table[node.name] = entry
    return table


def _stored_attrs(init: ast.FunctionDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(init):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr != "args"
            ):
                attrs.add(target.attr)
    return attrs


def _in_taxonomy(
    name: str, table: Dict[str, _ExceptionClass], seen: Optional[Set[str]] = None
) -> bool:
    if name in PICKLED_EXCEPTION_ROOTS:
        return True
    seen = seen or set()
    if name in seen or name not in table:
        return False
    seen.add(name)
    return any(_in_taxonomy(base, table, seen) for base in table[name].bases)


def _effective_reduce(
    entry: _ExceptionClass, table: Dict[str, _ExceptionClass]
) -> Optional[ast.FunctionDef]:
    """The ``__reduce__`` this class actually pickles through (its own,
    or the nearest analyzed ancestor's)."""
    seen: Set[str] = set()
    current: Optional[_ExceptionClass] = entry
    while current is not None:
        if current.reduce is not None:
            return current.reduce
        parent = next(
            (base for base in current.bases if base in table and base not in seen),
            None,
        )
        if parent is None:
            return None
        seen.add(parent)
        current = table[parent]
    return None


def _referenced_attrs(func: ast.FunctionDef) -> Set[str]:
    """Attribute names a function body mentions (``self.x``, ``o.x`` or
    the string literal ``"x"`` for getattr-style access)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


def _required_positionals(init: ast.FunctionDef) -> int:
    args = init.args
    positional = list(args.posonlyargs) + list(args.args)
    required = len(positional) - len(args.defaults)
    # drop self
    return max(0, required - 1)


def _calls_super_init(init: ast.FunctionDef) -> bool:
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
        ):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


@rule("P201", "exception __reduce__ drops constructor state", scope="project")
def check_reduce_fidelity(project: ProjectContext) -> None:
    table = _collect_exception_classes(project.modules)
    for entry in table.values():
        if not _in_taxonomy(entry.name, table):
            continue
        if not entry.state_attrs:
            continue
        reduce_fn = _effective_reduce(entry, table)
        context = entry.context
        if reduce_fn is None:
            context.add(
                "P201",
                entry.node,
                f"{entry.name} stores state "
                f"({', '.join(sorted(entry.state_attrs))}) but pickles "
                f"through default Exception.__reduce__, which rebuilds "
                f"from args alone — state is dropped across the pool hop",
            )
            continue
        missing = sorted(entry.state_attrs - _referenced_attrs(reduce_fn))
        if missing:
            # Anchor at this class's own __reduce__ when it has one;
            # an inherited (other-module) reduce anchors at the class.
            context.add(
                "P201",
                entry.reduce if entry.reduce is not None else entry.node,
                f"{entry.name}.__reduce__ never references "
                f"{', '.join(missing)} — that state is silently dropped "
                f"when the error crosses a process boundary",
            )


@rule(
    "P202",
    "taxonomy subclass __init__ incompatible with inherited __reduce__",
    scope="project",
)
def check_init_signature(project: ProjectContext) -> None:
    table = _collect_exception_classes(project.modules)
    for entry in table.values():
        if not _in_taxonomy(entry.name, table):
            continue
        if entry.init is None:
            continue
        context = entry.context
        is_root = entry.name in PICKLED_EXCEPTION_ROOTS
        problems: List[str] = []
        if entry.init.args.kwarg is None:
            problems.append(
                "no **details catch-all (reconstruction passes arbitrary "
                "detail keys as keywords)"
            )
        required = _required_positionals(entry.init)
        if required != 1:
            problems.append(
                f"{required} required positional parameter(s), "
                f"reconstruction calls cls(message, **details)"
            )
        if not is_root and not _calls_super_init(entry.init):
            problems.append(
                "does not chain to the base __init__, so message/details "
                "never exist at pickle time"
            )
        if problems:
            context.add(
                "P202",
                entry.init,
                f"{entry.name}.__init__ cannot be rebuilt by the "
                f"inherited __reduce__: " + "; ".join(problems),
            )


# --------------------------------------------------------------------- #
# P203: submitted jobs leaning on unshipped module state                #
# --------------------------------------------------------------------- #
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _module_mutables(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp))
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        ):
            mutable = True
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _pool_usage(context: ModuleContext):
    """(submitted function names, initializer function names) here."""
    submitted: Set[str] = set()
    initializers: Set[str] = set(WORKER_INITIALIZERS)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map")
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            submitted.add(node.args[0].id)
        dotted = context.imports.dotted(node.func)
        if dotted is not None and dotted.endswith("ProcessPoolExecutor"):
            for keyword in node.keywords:
                if keyword.arg == "initializer" and isinstance(
                    keyword.value, ast.Name
                ):
                    initializers.add(keyword.value.id)
    return submitted, initializers


def _assigned_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@rule("P203", "pool job reads module state a fork never re-creates")
def check_pool_closure(context: ModuleContext) -> None:
    submitted, initializers = _pool_usage(context)
    if not submitted:
        return
    mutables = _module_mutables(context.tree)
    if not mutables:
        return
    functions = {
        node.name: node
        for node in context.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    warmed: Set[str] = set()
    for name in initializers:
        init_fn = functions.get(name)
        if init_fn is not None:
            warmed |= _assigned_names(init_fn)
    for name in sorted(submitted):
        func = functions.get(name)
        if func is None:
            continue
        local = _assigned_names(func)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutables
                and node.id not in warmed
                and node.id not in local
            ):
                context.add(
                    "P203",
                    node,
                    f"pool job '{name}' reads module-level mutable "
                    f"'{node.id}' that no warm-worker initializer "
                    f"populates — its content is whatever the fork "
                    f"happened to inherit",
                )


# --------------------------------------------------------------------- #
# P204: SQLite connections crossing a fork boundary                     #
# --------------------------------------------------------------------- #
@rule("P204", "sqlite3 connection can cross a fork boundary")
def check_sqlite_fork(context: ModuleContext) -> None:
    # (a) a connection opened at import time is silently inherited by
    # every forked pool worker — undefined behaviour per the sqlite3
    # docs (one connection, many processes).
    for stmt in context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # function bodies execute later, not at import
        for node in _walk_shallow(stmt):
            if (
                isinstance(node, ast.Call)
                and context.imports.dotted(node.func) == "sqlite3.connect"
            ):
                context.add(
                    "P204",
                    node,
                    "sqlite3.connect() at module scope — the connection "
                    "is inherited by every forked worker; open it lazily "
                    "per process instead",
                )
    # (b) a name/attribute bound to a connection handed to the pool.
    connection_names: Set[str] = set()
    connection_attrs: Set[str] = set()
    for node in ast.walk(context.tree):
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and context.imports.dotted(node.value.func) == "sqlite3.connect"
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                connection_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                connection_attrs.add(target.attr)
    if not (connection_names or connection_attrs):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        is_submit = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map")
        )
        shipped: List[ast.expr] = []
        if is_submit:
            shipped.extend(node.args[1:])
        for keyword in node.keywords:
            if keyword.arg == "initargs" and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                shipped.extend(keyword.value.elts)
        for arg in shipped:
            leaked = (
                isinstance(arg, ast.Name) and arg.id in connection_names
            ) or (
                isinstance(arg, ast.Attribute) and arg.attr in connection_attrs
            )
            if leaked:
                context.add(
                    "P204",
                    arg,
                    "a sqlite3 connection is shipped to a pool worker — "
                    "connections must never cross a fork; pass the path "
                    "and reopen worker-side",
                )


def _walk_shallow(root: ast.stmt):
    """Walk a module-level statement without entering function bodies
    (those execute later, not at import; class bodies *do* run at
    import, so they are descended)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


__all__ = [
    "check_init_signature",
    "check_pool_closure",
    "check_reduce_fidelity",
    "check_sqlite_fork",
]
