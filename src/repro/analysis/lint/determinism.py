"""D-rules: determinism.

The campaign's headline invariant is byte-identical summaries and
store payloads across serial/pooled/sharded/resumed/traced runs.  Any
value derived from wall-clock, entropy, the process id or hash-seeded
iteration order that reaches a persisted payload breaks it.  These
rules fence the *sources*: inside modules the manifest classifies as
deterministic (``core``/``serialization``), such reads are flagged at
the call site — a legitimate use (a console heartbeat, a telemetry
envelope) carries an inline waiver stating why it never reaches a
payload.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.lint.rules import ModuleContext, rule

#: Wall-clock reads (canonical dotted form after import resolution).
#: ``time.perf_counter`` is deliberately absent: a *duration* is fine
#: to measure, as long as it flows to telemetry — durations that reach
#: payloads are caught by differential tests, not a source fence.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Entropy sources.  Calls through the module-level ``random.*`` API
#: use the process-global, time-seeded RNG; deterministic code threads
#: explicitly seeded ``random.Random(seed)`` instances instead.
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})
ENTROPY_PREFIXES = ("secrets.",)


def _call_name(context: ModuleContext, node: ast.Call) -> Optional[str]:
    return context.imports.dotted(node.func)


@rule("D101", "wall-clock read in deterministic code")
def check_wall_clock(context: ModuleContext) -> None:
    cls = context.classification
    if not cls.deterministic or cls.has_tag("allow-wallclock"):
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            name = _call_name(context, node)
            if name in WALL_CLOCK_CALLS:
                context.add(
                    "D101",
                    node,
                    f"wall-clock read '{name}()' in "
                    f"{cls.module_class} module — nothing derived from it "
                    f"may reach spec JSON, store payloads or summaries",
                )


@rule("D102", "entropy source in deterministic code")
def check_entropy(context: ModuleContext) -> None:
    cls = context.classification
    if not cls.deterministic:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(context, node)
        if name is None:
            continue
        if name in ENTROPY_CALLS or name.startswith(ENTROPY_PREFIXES):
            context.add(
                "D102", node, f"entropy source '{name}()' in deterministic code"
            )
        elif name == "random.Random":
            # Seedless Random() falls back to OS entropy; Random(seed)
            # is the sanctioned deterministic form.
            if not node.args:
                context.add(
                    "D102",
                    node,
                    "seedless 'random.Random()' — pass an explicit seed",
                )
        elif name.startswith("random.") and name.count(".") == 1:
            context.add(
                "D102",
                node,
                f"process-global RNG call '{name}()' — thread a seeded "
                f"random.Random instance instead",
            )
        elif name == "hash" and not _is_int_literal(node):
            context.add(
                "D102",
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED) — "
                "use hashlib for stable digests",
            )


def _is_int_literal(node: ast.Call) -> bool:
    return (
        len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, int)
    )


@rule("D104", "process id escaping into deterministic code")
def check_pid(context: ModuleContext) -> None:
    cls = context.classification
    if not cls.deterministic or cls.has_tag("allow-pid"):
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call) and _call_name(context, node) == "os.getpid":
            context.add(
                "D104",
                node,
                "os.getpid() in deterministic code — pids are sanctioned "
                "only in telemetry and shard naming (manifest tag "
                "'allow-pid')",
            )


# --------------------------------------------------------------------- #
# D103: unsorted set/dict iteration in serialization modules            #
# --------------------------------------------------------------------- #
_DICT_VIEWS = frozenset({"items", "keys", "values"})
_SET_CALLS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CALLS
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        # set algebra: a | b, a & b, a - b over tracked sets
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not node.keywords
    )


def _scope_set_names(scope_body: List[ast.stmt]) -> Set[str]:
    """Names assigned a set expression anywhere in this scope body
    (nested function bodies are separate scopes and excluded)."""
    names: Set[str] = set()
    empty: Set[str] = set()
    for stmt in scope_body:
        for node in _walk_scope(stmt):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, empty):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, empty)
            ):
                names.add(node.target.id)
    return names


def _walk_scope(root: ast.stmt):
    """Walk a statement without descending into nested function/class
    scopes (their iteration order concerns are their own).  A root
    that itself introduces a scope contributes nothing: its body is
    visited when :func:`_scopes` yields it as a scope of its own."""
    if isinstance(
        root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _iteration_sites(scope_body: List[ast.stmt]):
    """(iterable expression, anchor node) pairs in one scope."""
    for stmt in scope_body:
        for node in _walk_scope(stmt):
            if isinstance(node, ast.For):
                yield node.iter, node
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield generator.iter, node
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
            ):
                yield node.args[0], node
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and len(node.args) == 1
            ):
                yield node.args[0], node


def _scopes(tree: ast.Module):
    """Every lexical scope body in the module (module + functions)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


@rule("D103", "unsorted set/dict iteration in a serialization module")
def check_unsorted_iteration(context: ModuleContext) -> None:
    if context.classification.module_class != "serialization":
        return
    for body in _scopes(context.tree):
        set_names = _scope_set_names(body)
        for iterable, anchor in _iteration_sites(body):
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id in ("sorted", "enumerate")
            ):
                # sorted(...) is the fix; enumerate(sorted(...)) handled
                # by recursing once into enumerate's first argument.
                if iterable.func.id == "enumerate" and iterable.args:
                    inner = iterable.args[0]
                    if not (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "sorted"
                    ) and (
                        _is_set_expr(inner, set_names) or _is_dict_view(inner)
                    ):
                        context.add(
                            "D103",
                            anchor,
                            "iteration over an unsorted set/dict view in a "
                            "serialization module — wrap in sorted(...)",
                        )
                continue
            if _is_set_expr(iterable, set_names) or _is_dict_view(iterable):
                context.add(
                    "D103",
                    anchor,
                    "iteration over an unsorted set/dict view in a "
                    "serialization module — wrap in sorted(...)",
                )


__all__ = [
    "ENTROPY_CALLS",
    "WALL_CLOCK_CALLS",
    "check_entropy",
    "check_pid",
    "check_unsorted_iteration",
    "check_wall_clock",
]
