"""``python -m repro`` — the experiment command-line interface.

Examples::

    python -m repro --list                      # discover experiments
    python -m repro --list-scenarios            # discover named scenarios
    python -m repro --run figure8               # one experiment, stdout + artefact
    python -m repro --run all --out out/ -w 0   # full campaign, parallel workers

Architectural fault-injection campaigns get their own subcommand::

    python -m repro campaign --kernels matrix,canrdr --trials 100 \
        --store campaign.sqlite              # checkpoint every point
    python -m repro campaign --kernels matrix,canrdr --trials 100 \
        --store campaign.sqlite --resume     # simulate only missing points
    python -m repro campaign --kernels all --ci-target 0.05 --workers 0
    python -m repro campaign --kernels matrix,canrdr \
        --targets dl1,l2 --scenarios isolation,laec-worst   # sweep grid
    python -m repro campaign --kernels all --workers 0 \
        --point-timeout 30 --max-retries 3     # supervised: hung points
                                               # killed, crashes retried,
                                               # poison points quarantined

Result stores can be checked and healed in place::

    python -m repro store campaign.sqlite --verify   # checksum scan
    python -m repro store campaign.sqlite --repair   # drop corrupt rows
    python -m repro store campaign.sqlite \
        --merge campaign.sqlite.shards/shard-*.sqlite   # fold worker shards

Campaigns can record structured telemetry, queryable afterwards::

    python -m repro campaign ... --trace run.trace \
        --progress-interval 10               # JSONL spans + heartbeat
    python -m repro trace run.trace              # summary + slowest groups
    python -m repro trace run.trace --timeline   # failure timeline
    python -m repro trace run.trace --metrics    # Prometheus-style export
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import List, Optional

from repro.experiments.base import (
    DEFAULT_CAMPAIGN_SCALE,
    ExperimentContext,
    all_experiments,
    experiment_names,
    get_experiment,
)
from repro.scenarios import scenario_description, scenario_names

#: Default artefact directory — the one the benchmark harness populates.
DEFAULT_OUTPUT_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "output"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the paper's tables, figures and ablations. "
            "Each experiment writes its artefact to --out (byte-identical "
            "to the benchmark harness) and prints it to stdout."
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the named simulation scenarios and exit",
    )
    parser.add_argument(
        "--run",
        action="append",
        metavar="NAME",
        help="experiment to run (repeatable; 'all' runs the full campaign)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help=f"artefact output directory (default: {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process-pool workers for the kernel simulation matrix "
            "(0 = one per CPU; default: serial)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_CAMPAIGN_SCALE,
        help=(
            "kernel iteration-count scale for the campaign matrix "
            f"(default: {DEFAULT_CAMPAIGN_SCALE}, the artefact scale)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "RNG seed for experiments that draw random trials "
            "(fault_campaign, campaign_summary); default: each "
            "experiment's committed seed"
        ),
    )
    parser.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help=(
            "attach a persistent result store (SQLite): simulation "
            "results are reused across processes by content hash"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help=(
            "bypass all result caches (in-memory and --store reads); "
            "recomputes everything and refreshes the store"
        ),
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="do not print rendered artefacts to stdout",
    )
    return parser


def _build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Statistical architectural fault-injection campaign: sample "
            "(injection cycle x cache word x bit) points per stratum of "
            "the sweep grid (kernel x policy x target x scenario x "
            "scale), replay each fault in a live DL1/L2 during a real "
            "kernel run — optionally under bus interference — and "
            "classify outcomes architecturally (masked / corrected / "
            "detected / SDC / timing) with Wilson confidence intervals."
        ),
    )
    parser.add_argument(
        "--kernels",
        default="canrdr,matrix",
        metavar="A,B,...",
        help="comma-separated kernel names, or 'all' (default: canrdr,matrix)",
    )
    parser.add_argument(
        "--policies",
        default=",".join(
            ("no-ecc", "extra-cycle", "extra-stage", "laec")
        ),
        metavar="A,B,...",
        help="comma-separated ECC policies (default: the four Figure 8 policies)",
    )
    parser.add_argument(
        "--targets",
        default="dl1",
        metavar="A,B,...",
        help=(
            "comma-separated fault targets to sweep: dl1, l2 or dl1,l2 "
            "(default: dl1)"
        ),
    )
    parser.add_argument(
        "--scenarios",
        default="isolation",
        metavar="A,B,...",
        help=(
            "comma-separated named interference scenarios the faulty runs "
            "execute under (see --list-scenarios; e.g. isolation,laec-worst; "
            "default: isolation)"
        ),
    )
    parser.add_argument(
        "--scales",
        default=None,
        metavar="S1,S2,...",
        help=(
            "comma-separated kernel scales to sweep (overrides --scale as "
            "the scale axis; default: just --scale)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=80,
        metavar="N",
        help="maximum sampled faults per stratum (default: 80)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=20,
        metavar="N",
        help="points between early-stopping checks (default: 20)",
    )
    parser.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="W",
        help=(
            "stop a stratum early once the Wilson 95%% half-width of its "
            "SDC and corrected rates reaches W (e.g. 0.05)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="kernel iteration-count scale (default: 0.2)",
    )
    parser.add_argument(
        "--seed", type=int, default=2019, help="campaign seed (default: 2019)"
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=None,
        metavar="N",
        help="process-pool workers sharding the points (0 = one per CPU)",
    )
    parser.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="persist every finished point to this SQLite store",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse points already in --store (simulate only the missing "
            "ones); without it every point is recomputed and overwritten"
        ),
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock watchdog: a replay exceeding it is "
            "killed, retried, and quarantined after --max-retries "
            "(needs a process boundary, so serial campaigns run their "
            "points through a one-worker pool)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "retries per failed point (timeout / worker crash / replay "
            "error) before it is quarantined (default: 2)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base of the exponential retry backoff (default: 0.1)",
    )
    parser.add_argument(
        "--replay-mode",
        choices=("batched", "point"),
        default="batched",
        help=(
            "batched (default): derive golden state once per batch, "
            "triage dead-on-arrival/code-healed flips analytically and "
            "suffix-resume the rest; point: legacy per-point replay. "
            "Outcomes and summaries are byte-identical either way"
        ),
    )
    parser.add_argument(
        "--no-quarantine",
        action="store_true",
        help=(
            "fail fast: re-raise a point's final error instead of "
            "quarantining it and completing the campaign"
        ),
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic harness-fault injection for tests/CI: "
            "comma-separated kind@index[:always] directives, kinds "
            "kill-worker, timeout, fail, kill-main, sigint "
            '(e.g. "kill-worker@5,timeout@7:always")'
        ),
    )
    parser.add_argument(
        "--chaos-hang",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="how long a chaos timeout@ point hangs (default: 3600)",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help=(
            "record structured JSONL telemetry (spans campaign -> batch "
            "-> point, supervisor events, final metrics) to PATH; "
            "inspect it with 'python -m repro trace PATH'. Tracing never "
            "changes summaries or store payloads"
        ),
    )
    parser.add_argument(
        "--progress-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "emit a live progress line (points/s, ETA, supervisor "
            "counters) to stderr at batch boundaries, at most every "
            "SECONDS seconds (0 = every batch)"
        ),
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also write the rendered summary to FILE",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="do not print the summary"
    )
    return parser


def _run_campaign_command(argv: List[str]) -> int:
    from repro.campaign import (
        CampaignConfig,
        CampaignError,
        CampaignInterrupted,
        parse_chaos,
        run_campaign,
    )
    from repro.store import ResultStore
    from repro.telemetry import flight
    from repro.telemetry.console import format_flight_tail, format_stats_line, get_console
    from repro.telemetry.trace import Telemetry
    from repro.workloads import KERNEL_NAMES

    args = _build_campaign_parser().parse_args(argv)
    console = get_console()
    console.quiet = args.quiet
    kernels_arg = args.kernels.strip().lower()
    kernels = (
        tuple(KERNEL_NAMES)
        if kernels_arg == "all"
        else tuple(name.strip() for name in args.kernels.split(",") if name.strip())
    )
    policies = tuple(
        name.strip() for name in args.policies.split(",") if name.strip()
    )
    targets = tuple(
        name.strip().lower() for name in args.targets.split(",") if name.strip()
    )
    scenarios = tuple(
        name.strip().lower() for name in args.scenarios.split(",") if name.strip()
    )
    try:
        scales = (
            tuple(float(raw) for raw in args.scales.split(",") if raw.strip())
            if args.scales is not None
            else ()
        )
        config = CampaignConfig(
            kernels=kernels,
            policies=policies,
            scale=args.scale,
            trials=args.trials,
            batch=args.batch,
            ci_target=args.ci_target,
            seed=args.seed,
            workers=args.workers,
            targets=targets,
            scenarios=scenarios,
            scales=scales,
            point_timeout=args.point_timeout,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            quarantine=not args.no_quarantine,
            replay_mode=args.replay_mode,
        )
        chaos = (
            parse_chaos(args.chaos, hang_seconds=args.chaos_hang)
            if args.chaos is not None
            else None
        )
        telemetry = (
            Telemetry(
                args.trace,
                progress_interval=args.progress_interval,
                config={
                    "kernels": ",".join(kernels),
                    "policies": ",".join(policies),
                    "targets": ",".join(targets),
                    "scenarios": ",".join(scenarios),
                    "trials": args.trials,
                    "seed": args.seed,
                    "replay_mode": args.replay_mode,
                },
            )
            if args.trace is not None or args.progress_interval is not None
            else None
        )
    except ValueError as error:
        console.error(str(error))
        return 2
    if args.resume and args.store is None:
        console.error("--resume needs --store PATH")
        return 2

    store = None
    started = time.perf_counter()
    try:
        store = ResultStore(args.store) if args.store is not None else None
        result = run_campaign(
            config,
            store=store,
            resume=args.resume,
            chaos=chaos,
            telemetry=telemetry,
        )
    except CampaignInterrupted as error:
        console.error(f"[campaign] error: {error}")
        console.error(format_flight_tail(flight.recorder().tail()))
        return 3
    except CampaignError as error:
        console.error(f"[campaign] error: {error}")
        console.error(format_flight_tail(flight.recorder().tail()))
        return 1
    except Exception as error:  # noqa: BLE001 - structured exit, no traceback
        console.error(
            f"[campaign] error: internal: {type(error).__name__}: {error}"
        )
        console.error(format_flight_tail(flight.recorder().tail()))
        return 1
    finally:
        if store is not None:
            store.close()
    elapsed = time.perf_counter() - started

    text = result.render()
    console.output(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
    console.status(format_stats_line(result, elapsed))
    return 0


def _build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Inspect a campaign trace recorded with --trace: summary, "
            "slowest batch groups, failure timeline, Prometheus-style "
            "metrics export, schema validation."
        ),
    )
    parser.add_argument("path", type=pathlib.Path, help="the JSONL trace file")
    parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest batch groups to show (default: 5)",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="print the failure timeline (supervisor events in time order)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the final metrics snapshot as Prometheus text",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate every record against the trace schema; exit 1 on errors",
    )
    return parser


def _run_trace_command(argv: List[str]) -> int:
    try:
        return _trace_command(argv)
    except BrokenPipeError:
        # `repro trace ... | head` / `| grep -q` closes stdout early;
        # that is a normal way to consume a report, not an error.  Point
        # stdout at devnull so the interpreter's shutdown flush doesn't
        # raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _trace_command(argv: List[str]) -> int:
    from repro.telemetry.analyze import TraceFile

    args = _build_trace_parser().parse_args(argv)
    if not args.path.exists():
        print(f"no trace at {args.path}", file=sys.stderr)
        return 2
    try:
        trace = TraceFile(args.path)
    except Exception as error:  # noqa: BLE001 - structured exit, no traceback
        print(f"[trace] error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    if args.validate:
        problems = trace.validate()
        if problems:
            for problem in problems:
                print(f"[trace] {problem}", file=sys.stderr)
            print(f"[trace] {len(problems)} schema problem(s)", file=sys.stderr)
            return 1
        print(f"[trace] {len(trace.records)} record(s), schema OK")
        return 0
    if args.metrics:
        print(trace.metrics_text())
        return 0
    if args.timeline:
        print(trace.render_timeline())
        return 0
    print(trace.summary())
    print()
    print(trace.render_slowest(args.slowest))
    timeline = trace.failure_timeline()
    if timeline or trace.flights:
        print()
        print(trace.render_timeline())
    return 0


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Determinism & fork-safety static analyzer: D-rules "
            "(wall-clock/entropy/pid/unsorted iteration), P-rules "
            "(__reduce__ fidelity, pool closures, sqlite across forks), "
            "S-rules (store checksum API, observability name drift)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any unwaived, unbaselined finding remains",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="record every active finding into FILE and exit",
    )
    parser.add_argument(
        "--doc",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help=(
            "architecture doc for the S302/S303 name cross-check "
            "(default: nearest ARCHITECTURE.md above the first path)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _run_lint_command(argv: List[str]) -> int:
    from repro.analysis.lint import lint_paths, rule_catalogue, write_baseline

    args = _build_lint_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, title in rule_catalogue():
            print(f"{rule_id}  {title}")
        return 0
    paths = args.paths or [pathlib.Path(__file__).resolve().parent]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"[lint] no such path: {path}", file=sys.stderr)
        return 2
    report = lint_paths(
        paths, doc_path=args.doc, baseline_path=args.baseline
    )
    if args.write_baseline is not None:
        count = write_baseline(report, args.write_baseline)
        print(f"[lint] baselined {count} finding(s) -> {args.write_baseline}")
        return 0
    print(report.to_json() if args.json else report.render())
    if args.strict and report.active:
        return 1
    return 0


def _build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description=(
            "Inspect and heal a result store: verify per-row payload "
            "checksums, repair (drop corrupt rows so --resume "
            "re-simulates them, backfill legacy checksums), or "
            "deterministically corrupt a row (chaos testing)."
        ),
    )
    parser.add_argument("path", type=pathlib.Path, help="the SQLite store file")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="scan every row's checksum; exit 1 if any row is corrupt",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="drop corrupt rows and backfill legacy checksums",
    )
    parser.add_argument(
        "--corrupt-row",
        type=int,
        default=None,
        metavar="N",
        help="chaos: bit-corrupt the N-th result row (by key order)",
    )
    parser.add_argument(
        "--merge",
        nargs="+",
        type=pathlib.Path,
        default=None,
        metavar="SHARD",
        help=(
            "fold worker shard stores into PATH (created if missing); "
            "content-addressed keys make the merge idempotent and "
            "order-independent"
        ),
    )
    return parser


def _run_store_command(argv: List[str]) -> int:
    from repro.campaign import CampaignError, corrupt_store_row
    from repro.store import ResultStore

    args = _build_store_parser().parse_args(argv)
    if not args.path.exists() and args.merge is None:
        print(f"no store at {args.path}", file=sys.stderr)
        return 2
    try:
        if args.corrupt_row is not None:
            key = corrupt_store_row(args.path, args.corrupt_row)
            print(f"[store] corrupted row {args.corrupt_row} (key {key})")
        with ResultStore(args.path) as store:
            if args.merge is not None:
                from repro.store import merge_shards

                missing = [shard for shard in args.merge if not shard.exists()]
                if missing:
                    names = ", ".join(str(shard) for shard in missing)
                    print(f"[store] no shard at {names}", file=sys.stderr)
                    return 2
                merged = merge_shards(store, args.merge)
                print(
                    f"[store] merged {merged} row(s) from "
                    f"{len(args.merge)} shard(s); entries={len(store)}"
                )
                return 0
            if args.repair:
                report = store.repair()
                print(f"[store] repair: {report.describe()}")
                print(
                    f"[store] quarantined points on file: "
                    f"{store.quarantine_count()}"
                )
                return 0
            report = store.verify()
            print(f"[store] verify: {report.describe()}")
            print(
                f"[store] entries={len(store)} "
                f"schema=v{store.schema_version} "
                f"quarantined={store.quarantine_count()}"
            )
            if args.verify and not report.clean:
                return 1
            return 0
    except CampaignError as error:
        print(f"[store] error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 - structured exit, no traceback
        print(
            f"[store] error: internal: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 1


def _list_experiments() -> str:
    lines = ["Registered experiments:"]
    for experiment in all_experiments():
        artefact = f" -> {experiment.artifact}.txt" if experiment.artifact else ""
        lines.append(f"  {experiment.name:22s} {experiment.description}{artefact}")
    lines.append("")
    lines.append("Run one with: python -m repro --run <name>   (or --run all)")
    return "\n".join(lines)


def _list_scenarios() -> str:
    lines = ["Named simulation scenarios:"]
    for name in scenario_names():
        description = scenario_description(name)
        lines.append(f"  {name:22s} {description}")
    return "\n".join(lines)


def _resolve_requested(requested: List[str]) -> List[str]:
    names: List[str] = []
    for name in requested:
        if name.strip().lower() == "all":
            return experiment_names()
        names.append(name)
    return names


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return _run_campaign_command(argv[1:])
    if argv and argv[0] == "store":
        return _run_store_command(argv[1:])
    if argv and argv[0] == "trace":
        return _run_trace_command(argv[1:])
    if argv and argv[0] == "lint":
        return _run_lint_command(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.list_scenarios:
        print(_list_scenarios())
        return 0
    if not args.run:
        parser.print_usage()
        print("nothing to do: pass --list, --list-scenarios or --run <name>")
        return 2

    try:
        names = _resolve_requested(args.run)
        experiments = [get_experiment(name) for name in names]
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    out_dir = args.out if args.out is not None else DEFAULT_OUTPUT_DIR
    context = ExperimentContext(
        scale=args.scale,
        workers=args.workers,
        seed=args.seed,
        force=args.force,
        store=store,
    )
    try:
        for experiment in experiments:
            started = time.perf_counter()
            output = experiment.execute(context)
            elapsed = time.perf_counter() - started
            path = output.write(out_dir)
            if not args.quiet:
                print(output.text)
                print()
            where = f" -> {path}" if path else ""
            print(f"[{experiment.name}] done in {elapsed:.1f}s{where}", file=sys.stderr)
        if store is not None:
            print(
                f"[store] {args.store}: {len(store)} entries, "
                f"{store.hits} hits, {store.misses} misses",
                file=sys.stderr,
            )
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
