"""``python -m repro`` — the experiment command-line interface.

Examples::

    python -m repro --list                      # discover experiments
    python -m repro --list-scenarios            # discover named scenarios
    python -m repro --run figure8               # one experiment, stdout + artefact
    python -m repro --run all --out out/ -w 0   # full campaign, parallel workers
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from repro.experiments.base import (
    DEFAULT_CAMPAIGN_SCALE,
    ExperimentContext,
    all_experiments,
    experiment_names,
    get_experiment,
)
from repro.scenarios import scenario_description, scenario_names

#: Default artefact directory — the one the benchmark harness populates.
DEFAULT_OUTPUT_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "output"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the paper's tables, figures and ablations. "
            "Each experiment writes its artefact to --out (byte-identical "
            "to the benchmark harness) and prints it to stdout."
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the named simulation scenarios and exit",
    )
    parser.add_argument(
        "--run",
        action="append",
        metavar="NAME",
        help="experiment to run (repeatable; 'all' runs the full campaign)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help=f"artefact output directory (default: {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process-pool workers for the kernel simulation matrix "
            "(0 = one per CPU; default: serial)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_CAMPAIGN_SCALE,
        help=(
            "kernel iteration-count scale for the campaign matrix "
            f"(default: {DEFAULT_CAMPAIGN_SCALE}, the artefact scale)"
        ),
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="do not print rendered artefacts to stdout",
    )
    return parser


def _list_experiments() -> str:
    lines = ["Registered experiments:"]
    for experiment in all_experiments():
        artefact = f" -> {experiment.artifact}.txt" if experiment.artifact else ""
        lines.append(f"  {experiment.name:22s} {experiment.description}{artefact}")
    lines.append("")
    lines.append("Run one with: python -m repro --run <name>   (or --run all)")
    return "\n".join(lines)


def _list_scenarios() -> str:
    lines = ["Named simulation scenarios:"]
    for name in scenario_names():
        description = scenario_description(name)
        lines.append(f"  {name:22s} {description}")
    return "\n".join(lines)


def _resolve_requested(requested: List[str]) -> List[str]:
    names: List[str] = []
    for name in requested:
        if name.strip().lower() == "all":
            return experiment_names()
        names.append(name)
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    if args.list_scenarios:
        print(_list_scenarios())
        return 0
    if not args.run:
        parser.print_usage()
        print("nothing to do: pass --list, --list-scenarios or --run <name>")
        return 2

    try:
        names = _resolve_requested(args.run)
        experiments = [get_experiment(name) for name in names]
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    out_dir = args.out if args.out is not None else DEFAULT_OUTPUT_DIR
    context = ExperimentContext(scale=args.scale, workers=args.workers)
    for experiment in experiments:
        started = time.perf_counter()
        output = experiment.execute(context)
        elapsed = time.perf_counter() - started
        path = output.write(out_dir)
        if not args.quiet:
            print(output.text)
            print()
        where = f" -> {path}" if path else ""
        print(f"[{experiment.name}] done in {elapsed:.1f}s{where}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
