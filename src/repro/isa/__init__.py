"""A small SPARC-V8-flavoured RISC instruction set.

The ISA is deliberately simple: 32 general-purpose registers (``r0`` is
hard-wired to zero, as ``%g0`` on SPARC), integer condition codes
(N/Z/V/C), word-addressed 32-bit instructions, three-operand register/
immediate arithmetic, displacement and register-indexed loads/stores, and
condition-code branches.  It is rich enough to express the EEMBC-like
kernels used by the paper's evaluation while remaining easy to assemble
and simulate cycle-accurately.

Public entry points:

* :func:`repro.isa.assembler.assemble` — assemble a source string into a
  :class:`repro.isa.program.Program`.
* :class:`repro.isa.instructions.Instruction` — decoded instruction
  record consumed by the functional and timing simulators.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    Mnemonic,
    REGISTER_COUNT,
)
from repro.isa.program import Program, Segment
from repro.isa.registers import (
    ConditionCodes,
    RegisterFile,
    ZERO_REGISTER,
    register_name,
    register_number,
)

__all__ = [
    "AssemblerError",
    "ConditionCodes",
    "Instruction",
    "InstructionClass",
    "Mnemonic",
    "Program",
    "REGISTER_COUNT",
    "RegisterFile",
    "Segment",
    "ZERO_REGISTER",
    "assemble",
    "register_name",
    "register_number",
]
