"""Instruction definitions for the mini SPARC-V8-like ISA.

Every architectural instruction occupies 4 bytes.  Instructions are kept
as decoded :class:`Instruction` records rather than binary encodings: the
timing model only needs the operand/def-use structure, the class of the
operation and, for memory operations, the addressing operands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import ZERO_REGISTER, register_name

INSTRUCTION_BYTES = 4

REGISTER_COUNT = 32


class InstructionClass(enum.Enum):
    """Coarse functional class used by the hazard and timing logic."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"

    @property
    def is_memory(self) -> bool:
        return self in (InstructionClass.LOAD, InstructionClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (
            InstructionClass.BRANCH,
            InstructionClass.CALL,
            InstructionClass.JUMP,
        )


class Mnemonic(enum.Enum):
    """All mnemonics understood by the assembler and simulators."""

    # Arithmetic / logic (3-operand, optional condition-code update).
    ADD = "add"
    ADDCC = "addcc"
    SUB = "sub"
    SUBCC = "subcc"
    AND = "and"
    ANDCC = "andcc"
    OR = "or"
    ORCC = "orcc"
    XOR = "xor"
    XORCC = "xorcc"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SMUL = "smul"
    UMUL = "umul"
    SDIV = "sdiv"
    UDIV = "udiv"
    # Immediate materialisation (full 32-bit constant in one instruction).
    SET = "set"
    # Loads.
    LD = "ld"
    LDUB = "ldub"
    LDSB = "ldsb"
    LDUH = "lduh"
    LDSH = "ldsh"
    # Stores.
    ST = "st"
    STB = "stb"
    STH = "sth"
    # Control transfer.
    BA = "ba"
    BN = "bn"
    BE = "be"
    BNE = "bne"
    BG = "bg"
    BLE = "ble"
    BGE = "bge"
    BL = "bl"
    BGU = "bgu"
    BLEU = "bleu"
    BCC = "bcc"
    BCS = "bcs"
    BPOS = "bpos"
    BNEG = "bneg"
    BVC = "bvc"
    BVS = "bvs"
    CALL = "call"
    JMPL = "jmpl"
    # Misc.
    NOP = "nop"
    HALT = "halt"


ALU_MNEMONICS = frozenset(
    {
        Mnemonic.ADD,
        Mnemonic.ADDCC,
        Mnemonic.SUB,
        Mnemonic.SUBCC,
        Mnemonic.AND,
        Mnemonic.ANDCC,
        Mnemonic.OR,
        Mnemonic.ORCC,
        Mnemonic.XOR,
        Mnemonic.XORCC,
        Mnemonic.SLL,
        Mnemonic.SRL,
        Mnemonic.SRA,
        Mnemonic.SET,
    }
)
CC_SETTING_MNEMONICS = frozenset(
    {
        Mnemonic.ADDCC,
        Mnemonic.SUBCC,
        Mnemonic.ANDCC,
        Mnemonic.ORCC,
        Mnemonic.XORCC,
    }
)
MUL_MNEMONICS = frozenset({Mnemonic.SMUL, Mnemonic.UMUL})
DIV_MNEMONICS = frozenset({Mnemonic.SDIV, Mnemonic.UDIV})
LOAD_MNEMONICS = frozenset(
    {Mnemonic.LD, Mnemonic.LDUB, Mnemonic.LDSB, Mnemonic.LDUH, Mnemonic.LDSH}
)
STORE_MNEMONICS = frozenset({Mnemonic.ST, Mnemonic.STB, Mnemonic.STH})
BRANCH_MNEMONICS = frozenset(
    {
        Mnemonic.BA,
        Mnemonic.BN,
        Mnemonic.BE,
        Mnemonic.BNE,
        Mnemonic.BG,
        Mnemonic.BLE,
        Mnemonic.BGE,
        Mnemonic.BL,
        Mnemonic.BGU,
        Mnemonic.BLEU,
        Mnemonic.BCC,
        Mnemonic.BCS,
        Mnemonic.BPOS,
        Mnemonic.BNEG,
        Mnemonic.BVC,
        Mnemonic.BVS,
    }
)

MEMORY_ACCESS_BYTES = {
    Mnemonic.LD: 4,
    Mnemonic.ST: 4,
    Mnemonic.LDUH: 2,
    Mnemonic.LDSH: 2,
    Mnemonic.STH: 2,
    Mnemonic.LDUB: 1,
    Mnemonic.LDSB: 1,
    Mnemonic.STB: 1,
}


def classify(mnemonic: Mnemonic) -> InstructionClass:
    """Map a mnemonic to its :class:`InstructionClass`."""
    if mnemonic in ALU_MNEMONICS:
        return InstructionClass.ALU
    if mnemonic in MUL_MNEMONICS:
        return InstructionClass.MUL
    if mnemonic in DIV_MNEMONICS:
        return InstructionClass.DIV
    if mnemonic in LOAD_MNEMONICS:
        return InstructionClass.LOAD
    if mnemonic in STORE_MNEMONICS:
        return InstructionClass.STORE
    if mnemonic in BRANCH_MNEMONICS:
        return InstructionClass.BRANCH
    if mnemonic is Mnemonic.CALL:
        return InstructionClass.CALL
    if mnemonic is Mnemonic.JMPL:
        return InstructionClass.JUMP
    if mnemonic is Mnemonic.NOP:
        return InstructionClass.NOP
    if mnemonic is Mnemonic.HALT:
        return InstructionClass.HALT
    raise ValueError(f"unclassifiable mnemonic: {mnemonic}")


@dataclass(frozen=True)
class Instruction:
    """A decoded static instruction.

    Operand conventions:

    * ALU / MUL / DIV: ``rd <- rs1 op (rs2 | imm)``.
    * ``set``: ``rd <- imm`` (``rs1``/``rs2`` unused).
    * loads:  ``rd <- MEM[rs1 + (rs2 | imm)]``.
    * stores: ``MEM[rs1 + (rs2 | imm)] <- rd`` (``rd`` is a *source*).
    * branches: ``imm`` holds the byte displacement to the target once the
      assembler has resolved ``target_label``.
    * ``call``: writes the return address to ``rd`` (the link register).
    * ``jmpl``: jumps to ``rs1 + imm`` and writes the return address to
      ``rd`` (``rd = r0`` for a plain return).
    """

    mnemonic: Mnemonic
    rd: int = ZERO_REGISTER
    rs1: int = ZERO_REGISTER
    rs2: int = ZERO_REGISTER
    imm: int = 0
    uses_imm: bool = True
    target_label: Optional[str] = None
    address: int = 0
    source_line: int = 0
    text: str = ""

    @property
    def klass(self) -> InstructionClass:
        return classify(self.mnemonic)

    @property
    def is_load(self) -> bool:
        return self.mnemonic in LOAD_MNEMONICS

    @property
    def is_store(self) -> bool:
        return self.mnemonic in STORE_MNEMONICS

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_MNEMONICS

    @property
    def is_control(self) -> bool:
        return self.klass.is_control

    @property
    def sets_condition_codes(self) -> bool:
        return self.mnemonic in CC_SETTING_MNEMONICS

    @property
    def reads_condition_codes(self) -> bool:
        return self.is_branch and self.mnemonic not in (Mnemonic.BA, Mnemonic.BN)

    @property
    def memory_bytes(self) -> int:
        """Access width in bytes for memory instructions (0 otherwise)."""
        return MEMORY_ACCESS_BYTES.get(self.mnemonic, 0)

    def source_registers(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (r0 excluded)."""
        klass = self.klass
        sources = []
        if klass in (
            InstructionClass.ALU,
            InstructionClass.MUL,
            InstructionClass.DIV,
        ):
            if self.mnemonic is not Mnemonic.SET:
                sources.append(self.rs1)
                if not self.uses_imm:
                    sources.append(self.rs2)
        elif klass is InstructionClass.LOAD:
            sources.append(self.rs1)
            if not self.uses_imm:
                sources.append(self.rs2)
        elif klass is InstructionClass.STORE:
            sources.append(self.rs1)
            if not self.uses_imm:
                sources.append(self.rs2)
            sources.append(self.rd)
        elif klass is InstructionClass.JUMP:
            sources.append(self.rs1)
        return tuple(sorted({r for r in sources if r != ZERO_REGISTER}))

    def address_registers(self) -> Tuple[int, ...]:
        """Registers used to *form the effective address* (memory ops only).

        This is the register set the LAEC look-ahead unit must check for a
        data hazard with the preceding instruction: the loaded/stored data
        register of a store is not part of address formation.
        """
        if not self.klass.is_memory:
            return ()
        registers = [self.rs1]
        if not self.uses_imm:
            registers.append(self.rs2)
        return tuple(sorted({r for r in registers if r != ZERO_REGISTER}))

    def destination_register(self) -> Optional[int]:
        """Architectural register written by this instruction, if any."""
        klass = self.klass
        if klass in (
            InstructionClass.ALU,
            InstructionClass.MUL,
            InstructionClass.DIV,
            InstructionClass.LOAD,
        ):
            return self.rd if self.rd != ZERO_REGISTER else None
        if klass in (InstructionClass.CALL, InstructionClass.JUMP):
            return self.rd if self.rd != ZERO_REGISTER else None
        return None

    def render(self) -> str:
        """Render an assembly-like textual form (used by the disassembler)."""
        name = self.mnemonic.value
        if self.klass in (InstructionClass.NOP, InstructionClass.HALT):
            return name
        if self.mnemonic is Mnemonic.SET:
            return f"{name} {self.imm:#x}, {register_name(self.rd)}"
        if self.is_load:
            return f"{name} [{self._address_operand()}], {register_name(self.rd)}"
        if self.is_store:
            return f"{name} {register_name(self.rd)}, [{self._address_operand()}]"
        if self.is_branch:
            target = self.target_label or f"{self.imm:+d}"
            return f"{name} {target}"
        if self.mnemonic is Mnemonic.CALL:
            target = self.target_label or f"{self.imm:#x}"
            return f"{name} {target}"
        if self.mnemonic is Mnemonic.JMPL:
            return (
                f"{name} {register_name(self.rs1)}+{self.imm}, "
                f"{register_name(self.rd)}"
            )
        operand2 = str(self.imm) if self.uses_imm else register_name(self.rs2)
        return (
            f"{name} {register_name(self.rs1)}, {operand2}, "
            f"{register_name(self.rd)}"
        )

    def _address_operand(self) -> str:
        base = register_name(self.rs1)
        if self.uses_imm:
            if self.imm == 0:
                return base
            return f"{base}{self.imm:+d}"
        return f"{base}+{register_name(self.rs2)}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.render()


def make_nop(address: int = 0) -> Instruction:
    """Return a NOP instruction (useful for padding and tests)."""
    return Instruction(mnemonic=Mnemonic.NOP, address=address, text="nop")
