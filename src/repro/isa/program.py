"""Program image produced by the assembler.

A :class:`Program` bundles the instruction stream (text segment), the
initial data image (data segment), the symbol table, and the memory-layout
constants the functional simulator needs (entry point, stack top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction

#: Default segment bases, loosely modelled on a LEON bare-metal layout.
TEXT_BASE = 0x4000_0000
DATA_BASE = 0x4010_0000
STACK_TOP = 0x407F_FFF0


class ProgramError(ValueError):
    """Raised for malformed programs (bad addresses, missing symbols...)."""


@dataclass
class Segment:
    """A contiguous byte-addressed memory region with initial contents."""

    base: int
    data: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last initialised byte address."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def read_word(self, address: int) -> int:
        """Read a little-endian 32-bit word at ``address``."""
        offset = address - self.base
        if offset < 0 or offset + 4 > len(self.data):
            raise ProgramError(f"word read outside segment: {address:#x}")
        return int.from_bytes(self.data[offset : offset + 4], "little")

    def write_word(self, address: int, value: int) -> None:
        offset = address - self.base
        if offset < 0 or offset + 4 > len(self.data):
            raise ProgramError(f"word write outside segment: {address:#x}")
        self.data[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")


@dataclass
class Program:
    """An assembled program: instructions, data image and symbols."""

    instructions: List[Instruction]
    data: Segment
    symbols: Dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    entry: int = TEXT_BASE
    stack_top: int = STACK_TOP
    name: str = "program"

    def __post_init__(self) -> None:
        self._by_address: Dict[int, Instruction] = {
            instr.address: instr for instr in self.instructions
        }

    @property
    def text_size(self) -> int:
        """Size of the text segment in bytes."""
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def text_end(self) -> int:
        return self.text_base + self.text_size

    def instruction_at(self, address: int) -> Instruction:
        """Return the instruction located at byte ``address``."""
        instr = self._by_address.get(address)
        if instr is None:
            raise ProgramError(f"no instruction at address {address:#x}")
        return instr

    def has_instruction_at(self, address: int) -> bool:
        return address in self._by_address

    def symbol(self, name: str) -> int:
        """Return the address bound to label ``name``."""
        try:
            return self.symbols[name]
        except KeyError as exc:
            raise ProgramError(f"undefined symbol {name!r}") from exc

    def iter_instructions(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def disassemble(self, *, with_addresses: bool = True) -> str:
        """Return a human-readable listing of the text segment."""
        reverse_symbols: Dict[int, List[str]] = {}
        for name, address in self.symbols.items():
            reverse_symbols.setdefault(address, []).append(name)
        lines: List[str] = []
        for instr in self.instructions:
            for label in sorted(reverse_symbols.get(instr.address, [])):
                lines.append(f"{label}:")
            body = instr.render()
            if with_addresses:
                lines.append(f"    {instr.address:#010x}:  {body}")
            else:
                lines.append(f"    {body}")
        return "\n".join(lines)

    def static_instruction_count(self) -> int:
        return len(self.instructions)

    def data_footprint(self) -> int:
        """Bytes of initialised data."""
        return self.data.size

    def describe(self) -> str:
        """One-line summary used in logs and example scripts."""
        return (
            f"{self.name}: {self.static_instruction_count()} instructions, "
            f"{self.data_footprint()} data bytes, entry {self.entry:#x}"
        )


def find_entry(symbols: Dict[str, int], default: int, label: Optional[str] = None) -> int:
    """Resolve the entry point: explicit label, ``main``/``_start`` or default."""
    if label is not None:
        if label not in symbols:
            raise ProgramError(f"entry label {label!r} is not defined")
        return symbols[label]
    for candidate in ("main", "_start", "start"):
        if candidate in symbols:
            return symbols[candidate]
    return default
