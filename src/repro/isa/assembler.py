"""Two-pass assembler for the mini SPARC-V8-like ISA.

Syntax overview (one statement per line, ``;``/``#``/``!`` start comments)::

    .text                       ; switch to the text segment (default)
    .data                       ; switch to the data segment
    .word 1, 2, 3               ; 32-bit little-endian words
    .half 1, 2                  ; 16-bit values
    .byte 1, 2                  ; 8-bit values
    .space 64                   ; reserve zero-initialised bytes
    .align 8                    ; align the current location counter

    label:
        set   table, r1         ; load a 32-bit constant or symbol address
        ld    [r1+4], r2        ; displacement load
        ld    [r1+r3], r2       ; register-indexed load
        add   r2, 10, r2        ; register/immediate ALU op
        st    r2, [r1]          ; store
        subcc r4, r0, r0        ; compare (sets condition codes)
        bne   loop              ; conditional branch
        call  function          ; writes the return address to lr (r31)
        jmpl  lr, 0, r0         ; return
        halt

Pseudo-instructions: ``mov a, rd`` (expands to ``or r0, a, rd``),
``cmp a, b`` (expands to ``subcc a, b, r0``), ``inc rd``/``dec rd``,
``ret`` (expands to ``jmpl lr, 0, r0``), and ``clr rd``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    BRANCH_MNEMONICS,
    INSTRUCTION_BYTES,
    Instruction,
    Mnemonic,
)
from repro.isa.program import (
    DATA_BASE,
    Program,
    ProgramError,
    Segment,
    STACK_TOP,
    TEXT_BASE,
    find_entry,
)
from repro.isa.registers import LINK_REGISTER, RegisterError, ZERO_REGISTER, register_number

_COMMENT_RE = re.compile(r"[;#!].*$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^\[(?P<inner>[^\]]+)\]$")

_MNEMONIC_BY_NAME: Dict[str, Mnemonic] = {m.value: m for m in Mnemonic}
# "and"/"or" are Python keywords in the enum member names but the assembler
# accepts the plain mnemonic text, which is already covered by ``m.value``.


class AssemblerError(ValueError):
    """Raised when a source line cannot be assembled."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


@dataclass
class _Statement:
    """A single parsed source statement (directive or instruction)."""

    line_number: int
    text: str
    labels: Tuple[str, ...]
    mnemonic: Optional[str]
    operands: Tuple[str, ...]
    is_directive: bool


def _strip_comment(line: str) -> str:
    return _COMMENT_RE.sub("", line)


def _split_operands(operand_text: str) -> Tuple[str, ...]:
    """Split an operand list on commas that are not inside brackets."""
    operands: List[str] = []
    depth = 0
    current = []
    for char in operand_text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return tuple(op for op in operands if op)


def _parse_lines(source: str) -> List[_Statement]:
    statements: List[_Statement] = []
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        labels: List[str] = []
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels.append(match.group(1))
            line = line[match.end() :].strip()
        if not line and not labels:
            continue
        mnemonic: Optional[str] = None
        operands: Tuple[str, ...] = ()
        is_directive = False
        if line:
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = _split_operands(operand_text)
            is_directive = mnemonic.startswith(".")
        statements.append(
            _Statement(
                line_number=line_number,
                text=raw_line,
                labels=tuple(labels),
                mnemonic=mnemonic,
                operands=operands,
                is_directive=is_directive,
            )
        )
    return statements


def _parse_integer(token: str, symbols: Optional[Dict[str, int]] = None) -> int:
    """Parse an integer literal or (second pass only) a symbol reference."""
    text = token.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif text.lower().startswith("0b"):
            value = int(text, 2)
        else:
            value = int(text, 10)
        return -value if negative else value
    except ValueError:
        pass
    if symbols is not None and token.strip() in symbols:
        return symbols[token.strip()]
    raise AssemblerError(f"cannot parse integer or symbol {token!r}")


def _try_register(token: str) -> Optional[int]:
    try:
        return register_number(token)
    except RegisterError:
        return None


@dataclass
class _MemoryOperand:
    base: int
    index: Optional[int]
    displacement: int


def _parse_memory_operand(token: str, symbols: Dict[str, int]) -> _MemoryOperand:
    match = _MEM_OPERAND_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"malformed memory operand {token!r}")
    inner = match.group("inner").replace(" ", "")
    # Accept base, base+reg, base+imm, base-imm.
    split_at = None
    for position, char in enumerate(inner[1:], start=1):
        if char in "+-":
            split_at = position
            break
    if split_at is None:
        base = _try_register(inner)
        if base is None:
            raise AssemblerError(f"memory operand base must be a register: {token!r}")
        return _MemoryOperand(base=base, index=None, displacement=0)
    base_token = inner[:split_at]
    rest = inner[split_at:]
    base = _try_register(base_token)
    if base is None:
        raise AssemblerError(f"memory operand base must be a register: {token!r}")
    index = _try_register(rest.lstrip("+"))
    if index is not None and not rest.startswith("-"):
        return _MemoryOperand(base=base, index=index, displacement=0)
    displacement = _parse_integer(rest, symbols)
    return _MemoryOperand(base=base, index=None, displacement=displacement)


class Assembler:
    """Two-pass assembler producing :class:`repro.isa.program.Program`."""

    def __init__(
        self,
        *,
        text_base: int = TEXT_BASE,
        data_base: int = DATA_BASE,
        stack_top: int = STACK_TOP,
    ) -> None:
        self.text_base = text_base
        self.data_base = data_base
        self.stack_top = stack_top

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #
    def assemble(
        self, source: str, *, name: str = "program", entry_label: Optional[str] = None
    ) -> Program:
        statements = _parse_lines(source)
        symbols = self._first_pass(statements)
        instructions, data = self._second_pass(statements, symbols)
        entry = find_entry(symbols, self.text_base, entry_label)
        return Program(
            instructions=instructions,
            data=data,
            symbols=symbols,
            text_base=self.text_base,
            entry=entry,
            stack_top=self.stack_top,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # pass 1: symbol resolution                                          #
    # ------------------------------------------------------------------ #
    def _first_pass(self, statements: Sequence[_Statement]) -> Dict[str, int]:
        symbols: Dict[str, int] = {}
        text_counter = self.text_base
        data_counter = self.data_base
        in_text = True
        for statement in statements:
            counter = text_counter if in_text else data_counter
            for label in statement.labels:
                if label in symbols:
                    raise AssemblerError(
                        f"duplicate label {label!r}", statement.line_number, statement.text
                    )
                symbols[label] = counter
            if statement.mnemonic is None:
                continue
            if statement.is_directive:
                directive = statement.mnemonic
                if directive == ".text":
                    in_text = True
                elif directive == ".data":
                    in_text = False
                elif directive in (".word", ".half", ".byte", ".space", ".align"):
                    size = self._directive_size(statement)
                    if in_text:
                        raise AssemblerError(
                            "data directives are only allowed in .data",
                            statement.line_number,
                            statement.text,
                        )
                    if directive == ".align":
                        alignment = size
                        remainder = data_counter % alignment
                        if remainder:
                            data_counter += alignment - remainder
                    else:
                        data_counter += size
                else:
                    raise AssemblerError(
                        f"unknown directive {directive!r}",
                        statement.line_number,
                        statement.text,
                    )
            else:
                if not in_text:
                    raise AssemblerError(
                        "instructions are only allowed in .text",
                        statement.line_number,
                        statement.text,
                    )
                expansion = self._expansion_length(statement)
                text_counter += expansion * INSTRUCTION_BYTES
        return symbols

    def _directive_size(self, statement: _Statement) -> int:
        directive = statement.mnemonic
        if directive == ".word":
            return 4 * len(statement.operands)
        if directive == ".half":
            return 2 * len(statement.operands)
        if directive == ".byte":
            return len(statement.operands)
        if directive in (".space", ".align"):
            if len(statement.operands) != 1:
                raise AssemblerError(
                    f"{directive} takes exactly one operand",
                    statement.line_number,
                    statement.text,
                )
            return _parse_integer(statement.operands[0])
        raise AssemblerError(
            f"unknown directive {directive!r}", statement.line_number, statement.text
        )

    def _expansion_length(self, statement: _Statement) -> int:
        """Number of machine instructions produced by the statement."""
        # All instructions and pseudo-instructions expand to exactly one
        # machine instruction in this ISA (``set`` carries a 32-bit
        # immediate directly).
        return 1

    # ------------------------------------------------------------------ #
    # pass 2: encoding                                                   #
    # ------------------------------------------------------------------ #
    def _second_pass(
        self, statements: Sequence[_Statement], symbols: Dict[str, int]
    ) -> Tuple[List[Instruction], Segment]:
        instructions: List[Instruction] = []
        data = bytearray()
        in_text = True
        text_counter = self.text_base
        data_counter = self.data_base
        for statement in statements:
            if statement.mnemonic is None:
                continue
            if statement.is_directive:
                in_text, text_counter, data_counter = self._emit_directive(
                    statement, symbols, data, in_text, text_counter, data_counter
                )
                continue
            try:
                instruction = self._encode_instruction(
                    statement, symbols, address=text_counter
                )
            except AssemblerError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise AssemblerError(
                    str(exc), statement.line_number, statement.text
                ) from exc
            instructions.append(instruction)
            text_counter += INSTRUCTION_BYTES
        segment = Segment(base=self.data_base, data=data)
        return instructions, segment

    def _emit_directive(
        self,
        statement: _Statement,
        symbols: Dict[str, int],
        data: bytearray,
        in_text: bool,
        text_counter: int,
        data_counter: int,
    ) -> Tuple[bool, int, int]:
        directive = statement.mnemonic
        if directive == ".text":
            return True, text_counter, data_counter
        if directive == ".data":
            return False, text_counter, data_counter
        if directive == ".word":
            for operand in statement.operands:
                value = _parse_integer(operand, symbols)
                data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
                data_counter += 4
        elif directive == ".half":
            for operand in statement.operands:
                value = _parse_integer(operand, symbols)
                data.extend((value & 0xFFFF).to_bytes(2, "little"))
                data_counter += 2
        elif directive == ".byte":
            for operand in statement.operands:
                value = _parse_integer(operand, symbols)
                data.append(value & 0xFF)
                data_counter += 1
        elif directive == ".space":
            size = _parse_integer(statement.operands[0])
            data.extend(bytes(size))
            data_counter += size
        elif directive == ".align":
            alignment = _parse_integer(statement.operands[0])
            remainder = data_counter % alignment
            if remainder:
                padding = alignment - remainder
                data.extend(bytes(padding))
                data_counter += padding
        else:  # pragma: no cover - rejected in pass 1
            raise AssemblerError(
                f"unknown directive {directive!r}", statement.line_number, statement.text
            )
        return in_text, text_counter, data_counter

    # ------------------------------------------------------------------ #
    # instruction encoding                                               #
    # ------------------------------------------------------------------ #
    def _encode_instruction(
        self, statement: _Statement, symbols: Dict[str, int], address: int
    ) -> Instruction:
        mnemonic_text = statement.mnemonic or ""
        operands = statement.operands
        line = statement.line_number
        text = statement.text.strip()

        # Pseudo-instruction expansion (single machine instruction each).
        if mnemonic_text == "mov":
            return self._encode_three_operand(
                Mnemonic.OR, (operands[0],), operands[0], operands[-1], statement, address
            )
        if mnemonic_text == "cmp":
            if len(operands) != 2:
                raise AssemblerError("cmp takes two operands", line, text)
            return self._encode_alu(
                Mnemonic.SUBCC, operands[0], operands[1], "r0", statement, address
            )
        if mnemonic_text == "tst":
            if len(operands) != 1:
                raise AssemblerError("tst takes one operand", line, text)
            return self._encode_alu(
                Mnemonic.ORCC, operands[0], "0", "r0", statement, address
            )
        if mnemonic_text == "inc":
            return self._encode_alu(
                Mnemonic.ADD, operands[0], "1", operands[0], statement, address
            )
        if mnemonic_text == "dec":
            return self._encode_alu(
                Mnemonic.SUB, operands[0], "1", operands[0], statement, address
            )
        if mnemonic_text == "clr":
            return self._encode_alu(
                Mnemonic.OR, "r0", "0", operands[0], statement, address
            )
        if mnemonic_text in ("ret", "retl"):
            return Instruction(
                mnemonic=Mnemonic.JMPL,
                rd=ZERO_REGISTER,
                rs1=LINK_REGISTER,
                imm=0,
                uses_imm=True,
                address=address,
                source_line=line,
                text=text,
            )

        mnemonic = _MNEMONIC_BY_NAME.get(mnemonic_text)
        if mnemonic is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic_text!r}", line, text)

        if mnemonic in (Mnemonic.NOP, Mnemonic.HALT):
            return Instruction(
                mnemonic=mnemonic, address=address, source_line=line, text=text
            )
        if mnemonic is Mnemonic.SET:
            if len(operands) != 2:
                raise AssemblerError("set takes two operands", line, text)
            value = _parse_integer(operands[0], symbols)
            rd = self._register(operands[1], statement)
            return Instruction(
                mnemonic=mnemonic,
                rd=rd,
                imm=value & 0xFFFFFFFF,
                uses_imm=True,
                address=address,
                source_line=line,
                text=text,
            )
        if mnemonic in BRANCH_MNEMONICS or mnemonic is Mnemonic.CALL:
            if len(operands) != 1:
                raise AssemblerError(
                    f"{mnemonic.value} takes one operand", line, text
                )
            target = operands[0]
            if target in symbols:
                displacement = symbols[target] - address
                label: Optional[str] = target
            else:
                displacement = _parse_integer(target, symbols)
                label = None
            rd = LINK_REGISTER if mnemonic is Mnemonic.CALL else ZERO_REGISTER
            return Instruction(
                mnemonic=mnemonic,
                rd=rd,
                imm=displacement,
                uses_imm=True,
                target_label=label,
                address=address,
                source_line=line,
                text=text,
            )
        if mnemonic is Mnemonic.JMPL:
            # jmpl rs1, imm, rd   or   jmpl rs1, rd
            if len(operands) == 3:
                rs1 = self._register(operands[0], statement)
                imm = _parse_integer(operands[1], symbols)
                rd = self._register(operands[2], statement)
            elif len(operands) == 2:
                rs1 = self._register(operands[0], statement)
                imm = 0
                rd = self._register(operands[1], statement)
            else:
                raise AssemblerError("jmpl takes two or three operands", line, text)
            return Instruction(
                mnemonic=mnemonic,
                rd=rd,
                rs1=rs1,
                imm=imm,
                uses_imm=True,
                address=address,
                source_line=line,
                text=text,
            )
        if mnemonic.value.startswith("ld"):
            if len(operands) != 2:
                raise AssemblerError("loads take two operands", line, text)
            memory = _parse_memory_operand(operands[0], symbols)
            rd = self._register(operands[1], statement)
            return self._memory_instruction(
                mnemonic, rd, memory, statement, address
            )
        if mnemonic.value.startswith("st"):
            if len(operands) != 2:
                raise AssemblerError("stores take two operands", line, text)
            rd = self._register(operands[0], statement)
            memory = _parse_memory_operand(operands[1], symbols)
            return self._memory_instruction(
                mnemonic, rd, memory, statement, address
            )
        # Remaining: 3-operand ALU / MUL / DIV.
        if len(operands) != 3:
            raise AssemblerError(
                f"{mnemonic.value} takes three operands", line, text
            )
        return self._encode_alu(
            mnemonic, operands[0], operands[1], operands[2], statement, address
        )

    def _encode_three_operand(
        self,
        mnemonic: Mnemonic,
        _unused: Tuple[str, ...],
        source: str,
        destination: str,
        statement: _Statement,
        address: int,
    ) -> Instruction:
        """Encode ``mov``: ``or r0, source, destination``."""
        return self._encode_alu(mnemonic, "r0", source, destination, statement, address)

    def _encode_alu(
        self,
        mnemonic: Mnemonic,
        operand1: str,
        operand2: str,
        destination: str,
        statement: _Statement,
        address: int,
    ) -> Instruction:
        rs1 = self._register(operand1, statement)
        rd = self._register(destination, statement)
        rs2 = _try_register(operand2)
        if rs2 is not None:
            return Instruction(
                mnemonic=mnemonic,
                rd=rd,
                rs1=rs1,
                rs2=rs2,
                uses_imm=False,
                address=address,
                source_line=statement.line_number,
                text=statement.text.strip(),
            )
        imm = _parse_integer(operand2, None)
        return Instruction(
            mnemonic=mnemonic,
            rd=rd,
            rs1=rs1,
            imm=imm,
            uses_imm=True,
            address=address,
            source_line=statement.line_number,
            text=statement.text.strip(),
        )

    def _memory_instruction(
        self,
        mnemonic: Mnemonic,
        rd: int,
        memory: _MemoryOperand,
        statement: _Statement,
        address: int,
    ) -> Instruction:
        if memory.index is not None:
            return Instruction(
                mnemonic=mnemonic,
                rd=rd,
                rs1=memory.base,
                rs2=memory.index,
                uses_imm=False,
                address=address,
                source_line=statement.line_number,
                text=statement.text.strip(),
            )
        return Instruction(
            mnemonic=mnemonic,
            rd=rd,
            rs1=memory.base,
            imm=memory.displacement,
            uses_imm=True,
            address=address,
            source_line=statement.line_number,
            text=statement.text.strip(),
        )

    def _register(self, token: str, statement: _Statement) -> int:
        number = _try_register(token)
        if number is None:
            raise AssemblerError(
                f"expected a register, got {token!r}",
                statement.line_number,
                statement.text,
            )
        return number


def assemble(
    source: str,
    *,
    name: str = "program",
    entry_label: Optional[str] = None,
    text_base: int = TEXT_BASE,
    data_base: int = DATA_BASE,
) -> Program:
    """Assemble ``source`` and return the resulting :class:`Program`."""
    assembler = Assembler(text_base=text_base, data_base=data_base)
    return assembler.assemble(source, name=name, entry_label=entry_label)
