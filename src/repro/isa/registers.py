"""Register file and condition-code models.

The register file has 32 general-purpose 32-bit registers.  Register 0 is
hard-wired to zero (writes are silently discarded), mirroring SPARC's
``%g0``.  A handful of registers have conventional aliases used by the
assembler and the workload kernels:

========  =====  =========================================
alias     reg    role
========  =====  =========================================
``zero``  r0     constant zero
``sp``    r14    stack pointer
``fp``    r30    frame pointer
``lr``    r31    link register (written by ``call``)
========  =====  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

REGISTER_COUNT = 32
ZERO_REGISTER = 0
STACK_POINTER = 14
FRAME_POINTER = 30
LINK_REGISTER = 31

WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000

_ALIASES: Dict[str, int] = {
    "zero": ZERO_REGISTER,
    "sp": STACK_POINTER,
    "fp": FRAME_POINTER,
    "lr": LINK_REGISTER,
}
_REVERSE_ALIASES: Dict[int, str] = {number: name for name, number in _ALIASES.items()}


class RegisterError(ValueError):
    """Raised for malformed register names or out-of-range numbers."""


def register_number(name: str) -> int:
    """Return the register number for ``name`` (``"r7"``, ``"sp"``, ...)."""
    token = name.strip().lower()
    if token in _ALIASES:
        return _ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < REGISTER_COUNT:
            return number
    raise RegisterError(f"unknown register {name!r}")


def register_name(number: int, *, prefer_alias: bool = False) -> str:
    """Return the canonical name for register ``number``."""
    if not 0 <= number < REGISTER_COUNT:
        raise RegisterError(f"register number out of range: {number}")
    if prefer_alias and number in _REVERSE_ALIASES:
        return _REVERSE_ALIASES[number]
    return f"r{number}"


def to_unsigned(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= WORD_MASK
    if value & SIGN_BIT:
        return value - (1 << 32)
    return value


@dataclass
class ConditionCodes:
    """SPARC-style integer condition codes (negative, zero, overflow, carry)."""

    negative: bool = False
    zero: bool = False
    overflow: bool = False
    carry: bool = False

    def update_arithmetic(self, result: int, carry: bool, overflow: bool) -> None:
        """Set the codes from a 33-bit arithmetic ``result`` and flags."""
        value = to_unsigned(result)
        self.negative = bool(value & SIGN_BIT)
        self.zero = value == 0
        self.overflow = overflow
        self.carry = carry

    def update_logical(self, result: int) -> None:
        """Set the codes from a logical operation (carry/overflow cleared)."""
        value = to_unsigned(result)
        self.negative = bool(value & SIGN_BIT)
        self.zero = value == 0
        self.overflow = False
        self.carry = False

    def as_tuple(self) -> tuple:
        return (self.negative, self.zero, self.overflow, self.carry)

    def copy(self) -> "ConditionCodes":
        return ConditionCodes(self.negative, self.zero, self.overflow, self.carry)


@dataclass
class RegisterFile:
    """A 32-entry integer register file with a hard-wired zero register."""

    values: List[int] = field(default_factory=lambda: [0] * REGISTER_COUNT)

    def read(self, number: int) -> int:
        if not 0 <= number < REGISTER_COUNT:
            raise RegisterError(f"register number out of range: {number}")
        if number == ZERO_REGISTER:
            return 0
        return self.values[number]

    def write(self, number: int, value: int) -> None:
        if not 0 <= number < REGISTER_COUNT:
            raise RegisterError(f"register number out of range: {number}")
        if number == ZERO_REGISTER:
            return
        self.values[number] = to_unsigned(value)

    def read_many(self, numbers: Iterable[int]) -> List[int]:
        return [self.read(number) for number in numbers]

    def snapshot(self) -> List[int]:
        """Return a copy of the architectural register values."""
        return list(self.values)

    def load_snapshot(self, snapshot: Iterable[int]) -> None:
        values = [to_unsigned(v) for v in snapshot]
        if len(values) != REGISTER_COUNT:
            raise RegisterError("snapshot must contain exactly 32 values")
        self.values = values
        self.values[ZERO_REGISTER] = 0

    def reset(self) -> None:
        self.values = [0] * REGISTER_COUNT
